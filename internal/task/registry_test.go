package task

import (
	"context"
	"strings"
	"testing"

	"ringsym"
	"ringsym/internal/canon"
	"ringsym/internal/ring"
)

func TestNames(t *testing.T) {
	names := Names()
	for _, want := range []string{"bounce", "coordinate", "discover", "patrol", "swarmlocate"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry lacks %q (have %v)", want, names)
		}
	}
	if !sortedStrings(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}

func TestPaperBoundNames(t *testing.T) {
	// The default task axis of a campaign matrix must stay exactly the
	// paper's built-ins, whatever derived workloads the registry grows —
	// that is what keeps default sweeps byte-identical across PRs.
	got := PaperBoundNames()
	if len(got) != 2 || got[0] != "coordinate" || got[1] != "discover" {
		t.Fatalf("PaperBoundNames() = %v, want [coordinate discover]", got)
	}
}

func TestLookup(t *testing.T) {
	spec, err := Lookup("Coordinate") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name() != "coordinate" {
		t.Fatalf("Lookup(Coordinate).Name() = %q", spec.Name())
	}
	_, err = Lookup("no-such-task")
	if err == nil {
		t.Fatal("Lookup of an unknown task succeeded")
	}
	// The error must be self-explaining: a typo in a sweep spec or an HTTP
	// request surfaces the full catalogue.
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-task error does not list %q: %v", name, err)
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	for _, tc := range []struct {
		label string
		spec  Spec
	}{
		{"duplicate", coordinateSpec{}},
		{"empty name", badNameSpec{name: ""}},
		{"uppercase name", badNameSpec{name: "Shout"}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%s) did not panic", tc.label)
				}
			}()
			Register(tc.spec)
		}()
	}
}

// badNameSpec is a minimal Spec used only to provoke Register's name checks.
type badNameSpec struct{ name string }

func (s badNameSpec) Name() string                 { return s.name }
func (badNameSpec) Description() string            { return "invalid" }
func (badNameSpec) PaperBound() bool               { return false }
func (badNameSpec) Solvable(ring.Model, bool) bool { return false }
func (badNameSpec) Bound(ring.Model, bool, bool, int, int) (float64, string) {
	return 0, "n/a"
}
func (badNameSpec) Run(context.Context, *ringsym.Network, Params) (Outcome, error) {
	return Outcome{}, nil
}
func (badNameSpec) Verify(*ringsym.Network, Params, Outcome) error { return nil }
func (badNameSpec) MapOutcome(out Outcome, _ canon.Map) Outcome    { return out }

func TestReframe(t *testing.T) {
	out := Outcome{Rounds: 7, PerAgent: []Split{{Leader: 1}, {Leader: 2}, {Leader: 3}, {Leader: 4}}}
	id := Reframe(out, canon.Map{N: 4})
	// Identity frames share the slice: the cached outcome must never be
	// copied on the hot path.
	if &id.PerAgent[0] != &out.PerAgent[0] {
		t.Error("identity Reframe copied the per-agent slice")
	}
	m := canon.Map{N: 4, Rotation: 1}
	rot := Reframe(out, m)
	if &rot.PerAgent[0] == &out.PerAgent[0] {
		t.Error("rotating Reframe aliased the shared per-agent slice")
	}
	for i := range rot.PerAgent {
		if rot.PerAgent[i] != out.PerAgent[m.CanonIndex(i)] {
			t.Errorf("agent %d: got split %+v, want canonical index %d's %+v",
				i, rot.PerAgent[i], m.CanonIndex(i), out.PerAgent[m.CanonIndex(i)])
		}
	}
}
