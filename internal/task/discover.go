package task

import (
	"context"
	"fmt"

	"ringsym"
	"ringsym/internal/canon"
	"ringsym/internal/ring"
)

// discoverSpec runs full location discovery (which includes coordination)
// with the best algorithm for the model and parity (Lemma 16 or Theorem 42).
// The facade verifies every agent's reconstructed map against the simulator's
// ground truth.
type discoverSpec struct{}

func (discoverSpec) Name() string { return "discover" }

func (discoverSpec) Description() string {
	return "full location discovery: every agent reconstructs the relative map of the whole ring"
}

func (discoverSpec) PaperBound() bool { return true }

func (discoverSpec) Solvable(model ring.Model, oddN bool) bool {
	return Solvable(model, oddN, LocationDiscovery)
}

func (discoverSpec) Bound(model ring.Model, oddN, commonSense bool, n, idBound int) (float64, string) {
	return Bound(model, oddN, commonSense, LocationDiscovery, n, idBound)
}

func (discoverSpec) Run(ctx context.Context, nw *ringsym.Network, p Params) (Outcome, error) {
	_, out, err := runDiscovery(ctx, nw, p)
	return out, err
}

// runDiscovery executes location discovery and converts its result into the
// shared task outcome.  It is the single extraction point for every workload
// built on discovery (discover, patrol, swarmlocate): the raw result is
// returned alongside so derived tasks can compute their extra fields from
// facade data the outcome does not carry.
func runDiscovery(ctx context.Context, nw *ringsym.Network, p Params) (*ringsym.DiscoveryResult, Outcome, error) {
	res, err := nw.DiscoverLocationsContext(ctx, ringsym.DiscoveryOptions{CommonSense: p.CommonSense, Seed: p.Seed})
	if err != nil {
		return nil, Outcome{}, err
	}
	out := Outcome{Rounds: res.Rounds, PerAgent: make([]Split, len(res.PerAgent))}
	for i, a := range res.PerAgent {
		out.PerAgent[i] = Split{Coordination: a.RoundsCoordination, Discovery: a.RoundsDiscovery}
		if a.IsLeader {
			out.LeaderID = a.ID
		}
	}
	return res, out, nil
}

func (discoverSpec) Verify(nw *ringsym.Network, p Params, out Outcome) error {
	if len(out.PerAgent) != nw.N() {
		return fmt.Errorf("discover: %d per-agent splits for %d agents", len(out.PerAgent), nw.N())
	}
	if nw.Engine().IndexOfID(out.LeaderID) < 0 {
		return fmt.Errorf("discover: leader ID %d does not exist in the network", out.LeaderID)
	}
	if lb := ringsym.LocationDiscoveryLowerBound(nw.Model(), nw.N()); out.Rounds < lb {
		return fmt.Errorf("discover: %d rounds beat the Lemma 6 lower bound of %d", out.Rounds, lb)
	}
	return nil
}

func (discoverSpec) MapOutcome(out Outcome, m canon.Map) Outcome { return Reframe(out, m) }
