package tasktest

import (
	"testing"

	"ringsym/internal/task"
)

// TestConformance runs the full obligation suite against every registered
// task: whatever lands in the registry is held to the same contract as the
// paper's built-ins, with no opt-out.
func TestConformance(t *testing.T) {
	names := task.Names()
	if len(names) == 0 {
		t.Fatal("task registry is empty")
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			Conformance(t, name)
		})
	}
}
