// Package tasktest is the conformance suite of the task registry: a harness
// that runs any registered task.Spec through the obligations every task must
// meet to travel safely through the campaign runner, the symmetry-canonical
// cache and the serving daemon.
//
// The obligations, per setting of a small model × parity × chirality grid:
//
//   - Solvable/Run agreement: a setting the spec declares solvable must run
//     to a verified ok record; an unsolvable setting must be classified
//     without running.
//   - Verify on ground truth: the spec's own Verify must accept every fresh
//     outcome (the runner enforces this on the execution path; the harness
//     additionally exercises it directly).
//   - Cache round-trip: Run(s) == MapOutcome(Run(canon(s))) — the outcome
//     computed on the canonical representative of s's symmetry orbit,
//     translated back through the frame map, must equal the outcome computed
//     on s directly.  This is the correctness contract of the memo cache.
//   - End-to-end symmetry: a rotated+reflected framing of a scenario served
//     from the cache must produce a record identical to direct execution.
//   - Byte-stable record JSON: running the same scenario twice must
//     serialise to identical bytes (determinism of every Extra field
//     included).
package tasktest

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"ringsym"
	"ringsym/internal/campaign"
	"ringsym/internal/canon"
	"ringsym/internal/engine"
	"ringsym/internal/netgen"
	"ringsym/internal/task"
)

// grid is the conformance sweep: all three models, both parities, both
// chirality regimes.  Sizes are small so the full suite stays fast.
type gridPoint struct {
	model string
	n     int
	mixed bool
}

func grid() []gridPoint {
	var out []gridPoint
	for _, model := range []string{"basic", "lazy", "perceptive"} {
		for _, n := range []int{8, 9} {
			for _, mixed := range []bool{false, true} {
				out = append(out, gridPoint{model: model, n: n, mixed: mixed})
			}
		}
	}
	return out
}

// Conformance runs the full obligation suite against the named registered
// task.
func Conformance(t *testing.T, name string) {
	t.Helper()
	spec, err := task.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name() != name {
		t.Fatalf("spec registered under %q reports Name() = %q", name, spec.Name())
	}
	solvableSettings := 0
	for _, g := range grid() {
		sc := campaign.Scenario{
			Task:           campaign.Task(name),
			Model:          g.model,
			N:              g.n,
			IDBound:        4 * g.n,
			MixedChirality: g.mixed,
			Seed:           1,
		}
		model, err := campaign.ParseModel(g.model)
		if err != nil {
			t.Fatal(err)
		}
		rec := campaign.RunScenario(sc, campaign.Options{})

		if !spec.Solvable(model, g.n%2 == 1) {
			if rec.Status != campaign.StatusUnsolvable {
				t.Errorf("%s: unsolvable setting ran: status %s (%s)", sc.Key(), rec.Status, rec.Error)
			}
			continue
		}
		solvableSettings++
		if rec.Status != campaign.StatusOK || !rec.Verified {
			t.Errorf("%s: status %s verified=%v (%s)", sc.Key(), rec.Status, rec.Verified, rec.Error)
			continue
		}

		byteStableRecord(t, spec, sc, rec)
		cacheRoundTrip(t, spec, sc)
		endToEndSymmetry(t, sc, rec)
	}
	if solvableSettings == 0 {
		t.Errorf("task %q is solvable nowhere on the conformance grid", name)
	}
}

// byteStableRecord re-runs the scenario and requires byte-identical JSON.
func byteStableRecord(t *testing.T, spec task.Spec, sc campaign.Scenario, rec campaign.Record) {
	t.Helper()
	again := campaign.RunScenario(sc, campaign.Options{})
	a, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(again)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("%s: record JSON not byte-stable:\nfirst:  %s\nsecond: %s", sc.Key(), a, b)
	}
}

// cacheRoundTrip checks Run(s) == MapOutcome(Run(canon(s))) at the outcome
// level, plus Verify on both fresh outcomes.  The generation parameters
// mirror the campaign runner's exactly (same netgen options), so the orbit
// exercised here is the one the cache would key.
func cacheRoundTrip(t *testing.T, spec task.Spec, sc campaign.Scenario) {
	t.Helper()
	model, err := campaign.ParseModel(sc.Model)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := netgen.Generate(netgen.Options{
		N:                   sc.N,
		IDBound:             sc.IDBound,
		Model:               model,
		MixedChirality:      sc.MixedChirality,
		ForceSplitChirality: sc.MixedChirality,
		Seed:                sc.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ccfg, m, err := canon.Canonicalize(gen)
	if err != nil {
		t.Fatal(err)
	}
	p := task.Params{N: sc.N, IDBound: gen.IDBound, MixedChirality: sc.MixedChirality, CommonSense: sc.CommonSense, Seed: sc.Seed}
	direct := runVerified(t, spec, gen, p, sc.Key()+"/direct")
	canonical := runVerified(t, spec, ccfg, p, sc.Key()+"/canonical")
	mapped := spec.MapOutcome(canonical, m)
	if !reflect.DeepEqual(direct, mapped) {
		t.Errorf("%s: cache round-trip broken (rotation %d, reflected %v):\ndirect: %+v\nmapped: %+v",
			sc.Key(), m.Rotation, m.Reflected, direct, mapped)
	}
}

// runVerified builds the network for a generated configuration exactly as
// the campaign runner does, runs the spec on it and requires its own Verify
// to accept the fresh outcome.
func runVerified(t *testing.T, spec task.Spec, gen engine.Config, p task.Params, label string) task.Outcome {
	t.Helper()
	nw, err := ringsym.NewNetwork(ringsym.Config{
		Model:         gen.Model,
		Circumference: gen.Circ,
		Positions:     gen.Positions,
		IDs:           gen.IDs,
		Chirality:     gen.Chirality,
		IDBound:       gen.IDBound,
		MaxRounds:     gen.MaxRounds,
	})
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	//ringvet:allow ctxflow test-support conformance harness: runs under the test binary, nothing to cancel
	out, err := spec.Run(context.Background(), nw, p)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if err := spec.Verify(nw, p, out); err != nil {
		t.Errorf("%s: Verify rejects a fresh outcome: %v", label, err)
	}
	return out
}

// endToEndSymmetry runs a rotated+reflected framing of the scenario both
// directly and through a cache primed with the untransformed framing; the
// records must agree on every field except the cache annotation.
func endToEndSymmetry(t *testing.T, sc campaign.Scenario, _ campaign.Record) {
	t.Helper()
	framed := sc
	framed.Phase, framed.Reflect = 3, true
	plain := campaign.RunScenario(framed, campaign.Options{})
	cache := campaign.NewCache(0)
	prime := campaign.RunScenario(sc, campaign.Options{Cache: cache})
	if prime.Cache != "miss" {
		t.Errorf("%s: priming run annotated %q, want miss", sc.Key(), prime.Cache)
	}
	cached := campaign.RunScenario(framed, campaign.Options{Cache: cache})
	if cached.Cache != "hit" {
		t.Errorf("%s: symmetric framing annotated %q, want hit", framed.Key(), cached.Cache)
	}
	cached.Cache = ""
	plain.Wall, cached.Wall = 0, 0
	if !reflect.DeepEqual(plain, cached) {
		t.Errorf("%s: cached symmetric record differs from direct execution:\ndirect: %+v\ncached: %+v",
			framed.Key(), plain, cached)
	}
}
