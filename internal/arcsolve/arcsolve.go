// Package arcsolve solves systems of "arc length" equations on a ring.
//
// The location-discovery protocols of the paper collect, round after round,
// linear equations over the unknown gaps g_0, ..., g_{n-1} between
// consecutive agents: every equation states that the clockwise arc starting
// at some slot and spanning some number of slots has a known length
// (Section V-C: "each round provides two new equations").  Writing
// P_j = g_0 + ... + g_{j-1} for the prefix sums, every such equation is a
// difference constraint P_b − P_a = w, so the system is solved with a
// weighted union-find over the prefix nodes: all gaps are determined exactly
// when every node is connected to node 0.
package arcsolve

import (
	"errors"
	"fmt"
)

// Errors returned by the solver.
var (
	ErrInconsistent = errors.New("arcsolve: inconsistent arc equation")
	ErrBadArc       = errors.New("arcsolve: invalid arc")
	ErrUnsolved     = errors.New("arcsolve: system is not yet fully determined")
)

// Solver accumulates arc equations over a ring of n slots whose gaps sum to
// the full circle length.
type Solver struct {
	n      int
	full   int64
	parent []int
	// offset[x] is P_x − P_parent[x]; after path compression it is the
	// offset to the root.
	offset []int64
	size   []int
	// merged counts union operations that actually joined two components.
	merged int
}

// New creates a solver for n gaps on a circle of the given total length
// (same unit as the equation values).
func New(n int, full int64) (*Solver, error) {
	if n < 2 || full <= 0 {
		return nil, fmt.Errorf("%w: n=%d full=%d", ErrBadArc, n, full)
	}
	s := &Solver{n: n, full: full, parent: make([]int, n), offset: make([]int64, n), size: make([]int, n)}
	for i := range s.parent {
		s.parent[i] = i
		s.size[i] = 1
	}
	return s, nil
}

// N returns the number of gaps.
func (s *Solver) N() int { return s.n }

// find returns the root of x and the offset P_x − P_root.
func (s *Solver) find(x int) (int, int64) {
	if s.parent[x] == x {
		return x, 0
	}
	root, off := s.find(s.parent[x])
	s.parent[x] = root
	s.offset[x] += off
	return root, s.offset[x]
}

// addDiff records P_b − P_a = d.
func (s *Solver) addDiff(a, b int, d int64) error {
	ra, oa := s.find(a)
	rb, ob := s.find(b)
	if ra == rb {
		if ob-oa != d {
			return fmt.Errorf("%w: P_%d − P_%d = %d conflicts with %d", ErrInconsistent, b, a, ob-oa, d)
		}
		return nil
	}
	// Attach the smaller tree under the larger.
	if s.size[ra] < s.size[rb] {
		ra, rb = rb, ra
		oa, ob = ob, oa
		a, b = b, a
		d = -d
	}
	// P_rb − P_ra = (P_b − ob) − (P_a − oa) = d − ob + oa.
	s.parent[rb] = ra
	s.offset[rb] = d - ob + oa
	s.size[ra] += s.size[rb]
	s.merged++
	return nil
}

// AddArc records that the clockwise arc starting at slot `from` and spanning
// `length` slots has the given total length.  length must be in [0, n]; a
// zero-length arc must have value 0 and a full-circle arc must have the full
// length (both carry no information).
func (s *Solver) AddArc(from, length int, value int64) error {
	if from < 0 || from >= s.n || length < 0 || length > s.n {
		return fmt.Errorf("%w: from=%d length=%d", ErrBadArc, from, length)
	}
	switch length {
	case 0:
		if value != 0 {
			return fmt.Errorf("%w: zero-length arc with value %d", ErrInconsistent, value)
		}
		return nil
	case s.n:
		if value != s.full {
			return fmt.Errorf("%w: full-circle arc with value %d (full %d)", ErrInconsistent, value, s.full)
		}
		return nil
	}
	to := (from + length) % s.n
	diff := value
	if from+length >= s.n {
		// The arc reaches or wraps past slot 0: P_to − P_from = value − full.
		diff = value - s.full
	}
	return s.addDiff(from, to, diff)
}

// Solved reports whether every gap is determined.
func (s *Solver) Solved() bool { return s.merged == s.n-1 }

// Prefix returns P_j relative to P_0 when both are in the same component.
func (s *Solver) Prefix(j int) (int64, bool) {
	if j < 0 || j >= s.n {
		return 0, false
	}
	r0, o0 := s.find(0)
	rj, oj := s.find(j)
	if r0 != rj {
		return 0, false
	}
	return oj - o0, true
}

// Gaps returns the solved gap values g_0..g_{n-1}; it fails when the system
// is not fully determined.
func (s *Solver) Gaps() ([]int64, error) {
	if !s.Solved() {
		return nil, ErrUnsolved
	}
	prefixes := make([]int64, s.n+1)
	for j := 0; j < s.n; j++ {
		p, ok := s.Prefix(j)
		if !ok {
			return nil, ErrUnsolved
		}
		prefixes[j] = p
	}
	prefixes[s.n] = s.full
	gaps := make([]int64, s.n)
	for j := 0; j < s.n; j++ {
		gaps[j] = prefixes[j+1] - prefixes[j]
		if gaps[j] <= 0 {
			return nil, fmt.Errorf("%w: derived non-positive gap g_%d = %d", ErrInconsistent, j, gaps[j])
		}
	}
	return gaps, nil
}
