package arcsolve

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 100); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("full=0 accepted")
	}
	if _, err := New(4, 100); err != nil {
		t.Errorf("valid solver rejected: %v", err)
	}
}

func TestSimpleSolve(t *testing.T) {
	// Gaps 10, 20, 30, 40 on a circle of 100.
	s, err := New(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Solved() {
		t.Fatal("empty system cannot be solved")
	}
	// Arc from slot 0 of length 1 = 10; from 1 length 2 = 50; from 2 length 3
	// (wrapping past slot 0) = 80.
	if err := s.AddArc(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.AddArc(1, 2, 50); err != nil {
		t.Fatal(err)
	}
	if err := s.AddArc(2, 3, 80); err != nil {
		t.Fatal(err)
	}
	if !s.Solved() {
		t.Fatal("system should be solved")
	}
	gaps, err := s.Gaps()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 20, 30, 40}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("gaps = %v, want %v", gaps, want)
		}
	}
}

func TestInconsistencyDetected(t *testing.T) {
	s, _ := New(4, 100)
	if err := s.AddArc(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.AddArc(0, 1, 11); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("got %v, want ErrInconsistent", err)
	}
	if err := s.AddArc(0, 0, 5); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("zero-length arc with value: got %v", err)
	}
	if err := s.AddArc(0, 4, 99); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("full arc with wrong value: got %v", err)
	}
	if err := s.AddArc(0, 4, 100); err != nil {
		t.Fatalf("full arc with right value rejected: %v", err)
	}
	if err := s.AddArc(0, 0, 0); err != nil {
		t.Fatalf("zero arc with zero value rejected: %v", err)
	}
	if err := s.AddArc(-1, 1, 5); !errors.Is(err, ErrBadArc) {
		t.Fatalf("negative from: got %v", err)
	}
	if err := s.AddArc(0, 9, 5); !errors.Is(err, ErrBadArc) {
		t.Fatalf("oversized length: got %v", err)
	}
}

func TestGapsBeforeSolved(t *testing.T) {
	s, _ := New(4, 100)
	if _, err := s.Gaps(); !errors.Is(err, ErrUnsolved) {
		t.Fatalf("got %v, want ErrUnsolved", err)
	}
	if _, ok := s.Prefix(2); ok {
		t.Error("Prefix(2) should be unknown")
	}
	if _, ok := s.Prefix(-1); ok {
		t.Error("Prefix(-1) should be rejected")
	}
	if v, ok := s.Prefix(0); !ok || v != 0 {
		t.Error("Prefix(0) must be 0 and known")
	}
}

// TestRandomReconstruction generates random gap vectors, feeds random
// consistent arc equations and checks that, once the solver reports success,
// the reconstruction is exact.
func TestRandomReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(20)
		gaps := make([]int64, n)
		var full int64
		for i := range gaps {
			gaps[i] = int64(1 + rng.Intn(50))
			full += gaps[i]
		}
		arcLen := func(from, length int) int64 {
			var v int64
			for k := 0; k < length; k++ {
				v += gaps[(from+k)%n]
			}
			return v
		}
		s, err := New(n, full)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10*n && !s.Solved(); i++ {
			from := rng.Intn(n)
			length := rng.Intn(n + 1)
			if err := s.AddArc(from, length, arcLen(from, length)); err != nil {
				t.Fatalf("trial %d: unexpected error: %v", trial, err)
			}
		}
		if !s.Solved() {
			continue // unlucky equation draw; nothing to check
		}
		got, err := s.Gaps()
		if err != nil {
			t.Fatal(err)
		}
		for i := range gaps {
			if got[i] != gaps[i] {
				t.Fatalf("trial %d: gap %d = %d, want %d", trial, i, got[i], gaps[i])
			}
		}
	}
}

// TestSolvedRequiresSpanningEquations: single-slot arcs for slots 0..n-2
// solve the system; dropping one leaves it undetermined.
func TestSolvedRequiresSpanningEquations(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		gaps := make([]int64, n)
		var full int64
		for i := range gaps {
			gaps[i] = int64(1 + rng.Intn(9))
			full += gaps[i]
		}
		s, err := New(n, full)
		if err != nil {
			return false
		}
		for i := 0; i < n-2; i++ {
			if err := s.AddArc(i, 1, gaps[i]); err != nil {
				return false
			}
		}
		if s.Solved() {
			return false // one slot short: cannot be solved yet
		}
		if err := s.AddArc(n-2, 1, gaps[n-2]); err != nil {
			return false
		}
		return s.Solved()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
