package fleet

import (
	"context"

	"ringsym/internal/obs"
)

// lease is one grantable unit of work: the scenario-index range [next, hi)
// still owed, where next is the merge watermark advanced as the worker's
// stream comes back.  lo is kept only for reporting; all scheduling operates
// on the remaining range.  Mutable fields are guarded by the coordinator's
// mutex — in particular hi, which a steal shrinks while the victim's stream
// reader is concurrently checking it.
type lease struct {
	id       int
	lo       int
	hi       int
	next     int // first index not yet streamed back
	attempts int // failed attempts on [next, hi) so far

	worker       string
	cancel       context.CancelFunc // cancels the in-flight stream, if any
	lastProgress int64              // obs.Now() of the last record received
}

func (c *Coordinator) newLease(lo, hi, attempts int) *lease {
	c.nextLeaseID++
	return &lease{id: c.nextLeaseID, lo: lo, hi: hi, next: lo, attempts: attempts, cancel: func() {}}
}

// endLeaseLocked retires an active lease after its stream closed.  A fully
// streamed lease is done; a short stream either re-queues the remainder for
// another attempt or — after MaxAttempts failures — quarantines it so the
// sweep can finish around the hole.
func (c *Coordinator) endLeaseLocked(w *worker, l *lease, cause string) {
	delete(c.active, l.id)
	w.busy--
	l.cancel = func() {}
	if l.next >= l.hi {
		w.completed++
		if obs.On() {
			obs.Emit(obs.Event{Type: obs.FleetLeaseDone, Level: obs.LevelInfo, Worker: w.addr, Lo: l.lo, Hi: l.hi})
		}
		c.kickLoop()
		return
	}
	w.fails++
	l.attempts++
	if obs.On() {
		obs.Emit(obs.Event{Type: obs.FleetLeaseFail, Level: obs.LevelWarn, Worker: w.addr, Lo: l.next, Hi: l.hi, Err: cause})
	}
	if l.attempts >= c.opts.MaxAttempts {
		c.quarantined = append(c.quarantined, Range{Lo: l.next, Hi: l.hi})
		c.merger.markAbsent(l.next, l.hi)
		if obs.On() {
			obs.Emit(obs.Event{Type: obs.FleetLeaseQuarantine, Level: obs.LevelError, Worker: w.addr, Lo: l.next, Hi: l.hi, Err: cause})
		}
	} else {
		c.pending = append(c.pending, c.newLease(l.next, l.hi, l.attempts))
	}
	c.kickLoop()
}
