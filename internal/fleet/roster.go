package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"time"

	"ringsym/internal/obs"
)

// worker is one roster entry: a ringd instance addressed by its base URL.
type worker struct {
	addr    string
	dynamic bool // joined via /v1/fleet/join (expires on silence) vs static

	up       bool
	busy     int   // leases currently granted to this worker
	lastSeen int64 // obs.Now() of the last heartbeat or stream progress
	retryAt  int64 // obs.Now() before which a down worker is not re-probed
	probing  bool  // a liveness probe is in flight

	records   int64 // record lines streamed into the merge
	completed int   // leases fully streamed
	fails     int   // lease attempts that failed here
}

// addWorkerLocked inserts or revives a roster entry.  Callers hold c.mu
// (New's single-threaded constructor path is the one exception).
func (c *Coordinator) addWorkerLocked(addr string, dynamic bool) {
	w, ok := c.roster[addr]
	if !ok {
		w = &worker{addr: addr, dynamic: dynamic}
		c.roster[addr] = w
	}
	w.lastSeen = obs.Now()
	if !w.up {
		w.up = true
		if obs.On() {
			obs.Emit(obs.Event{Type: obs.FleetWorkerUp, Level: obs.LevelInfo, Worker: addr})
		}
	}
	c.kickLoop()
}

// markDownLocked transitions a worker to down and schedules its re-probe.
func (c *Coordinator) markDownLocked(w *worker, cause string) {
	if !w.up {
		return
	}
	w.up = false
	w.retryAt = obs.Now() + int64(c.opts.ProbeInterval)
	if obs.On() {
		obs.Emit(obs.Event{Type: obs.FleetWorkerDown, Level: obs.LevelWarn, Worker: w.addr, Err: cause})
	}
}

// sortedWorkersLocked returns the roster ordered by address, so grant order
// is reproducible for a fixed roster and timing.
func (c *Coordinator) sortedWorkersLocked() []*worker {
	out := make([]*worker, 0, len(c.roster))
	for _, w := range c.roster {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}

// probe checks a down worker's /healthz and revives it on success.  Runs off
// the housekeeping tick in its own goroutine; w.probing serialises probes
// per worker.
func (c *Coordinator) probe(ctx context.Context, w *worker) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.addr+"/healthz", nil)
	alive := false
	if err == nil {
		resp, perr := c.client.Do(req)
		if perr == nil {
			resp.Body.Close()
			alive = resp.StatusCode == http.StatusOK
		}
	}
	c.mu.Lock()
	w.probing = false
	if alive {
		c.addWorkerLocked(w.addr, w.dynamic)
	} else {
		w.retryAt = obs.Now() + int64(c.opts.ProbeInterval)
	}
	c.mu.Unlock()
}

// joinRequest is the body of POST /v1/fleet/join and /v1/fleet/heartbeat:
// the worker's advertised base URL.
type joinRequest struct {
	Addr string `json:"addr"`
}

// Handler returns the coordinator's control-plane mux for dynamic worker
// registration:
//
//	POST /v1/fleet/join       {"addr": "http://host:8080"} — register
//	POST /v1/fleet/heartbeat  {"addr": "http://host:8080"} — keep alive
//
// A heartbeat from an unknown address is treated as a join, so a worker that
// outlives a coordinator restart re-registers without special-casing.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/fleet/join", c.handleJoin)
	mux.HandleFunc("/v1/fleet/heartbeat", c.handleJoin)
	return mux
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req joinRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad join body: "+err.Error(), http.StatusBadRequest)
		return
	}
	addrs, err := ParseWorkers(req.Addr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.addWorkerLocked(addrs[0], true)
	// Peer discovery piggybacks on the join/heartbeat exchange: the
	// response lists every other up worker (sorted, so a stable roster
	// yields a stable list), and the worker feeds it to its store-peer
	// fetcher.  No extra endpoint, no extra polling cadence — the roster a
	// worker caches is exactly as fresh as its liveness registration.
	peers := make([]string, 0, len(c.roster))
	for _, rw := range c.sortedWorkersLocked() {
		if rw.up && rw.addr != addrs[0] {
			peers = append(peers, rw.addr)
		}
	}
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"ok":       true,
		"interval": c.heartbeatInterval().String(),
		"peers":    peers,
	})
}

// heartbeatInterval is the cadence the coordinator asks joined workers to
// heartbeat at: a third of the expiry window, so two drops are survivable.
func (c *Coordinator) heartbeatInterval() time.Duration {
	return c.opts.HeartbeatTimeout / 3
}
