package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ringsym/internal/campaign"
	"ringsym/internal/obs"
	"ringsym/internal/serve"
)

// testMatrix is small enough for fast tests but spans tasks and models so
// records exercise the full export shape.
func testMatrix() campaign.Matrix {
	return campaign.Matrix{
		Tasks:  []campaign.Task{campaign.TaskCoordinate, campaign.TaskDiscover},
		Models: []string{"perceptive", "lazy"},
		Sizes:  []int{8},
		Seeds:  []int64{1, 2},
	}
}

// localExport runs the matrix single-machine and returns the canonical JSONL
// bytes every fleet configuration must reproduce.
func localExport(t *testing.T, m campaign.Matrix) []byte {
	t.Helper()
	scs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	recs, err := campaign.RunAll(context.Background(), scs, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := campaign.NewOrderedWriter(&buf, scs)
	for _, rec := range recs {
		if err := w.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// startWorker spins up a real serving pool behind httptest, exactly what a
// ringd daemon serves.
func startWorker(t *testing.T, opts serve.Options) *httptest.Server {
	t.Helper()
	pool := serve.New(opts)
	ts := httptest.NewServer(pool.Handler())
	t.Cleanup(func() {
		ts.Close()
		pool.Close()
	})
	return ts
}

func TestFleetByteIdentity(t *testing.T) {
	m := testMatrix()
	want := localExport(t, m)

	w1 := startWorker(t, serve.Options{Workers: 2})
	w2 := startWorker(t, serve.Options{Workers: 2})
	var got bytes.Buffer
	res, err := Run(context.Background(), m, Options{
		Workers:   []string{w1.URL, w2.URL},
		LeaseSize: 3,
		Records:   &got,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("fleet export differs from the single-machine export:\nfleet:\n%s\nlocal:\n%s", got.Bytes(), want)
	}
	if len(res.Quarantined) != 0 {
		t.Errorf("clean run quarantined %v", res.Quarantined)
	}
	if res.Merged != res.Total {
		t.Errorf("merged %d of %d", res.Merged, res.Total)
	}
	var streamed int64
	for _, ws := range res.Workers {
		streamed += ws.Records
	}
	if streamed != int64(res.Total) {
		t.Errorf("workers streamed %d records, want %d", streamed, res.Total)
	}
}

// flakyWorker streams real records but aborts the connection after maxLines
// lines on the first failTimes requests: a daemon dying mid-stream.
type flakyWorker struct {
	t         *testing.T
	remaining atomic.Int64 // aborts left to inject
	maxLines  int
}

func (f *flakyWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		w.WriteHeader(http.StatusOK)
		return
	}
	lo, _ := strconv.Atoi(r.URL.Query().Get("lo"))
	hi, _ := strconv.Atoi(r.URL.Query().Get("hi"))
	var m campaign.Matrix
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	scs, err := m.Expand()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	lines := exportLines(f.t, scs)
	abort := f.remaining.Add(-1) >= 0
	for i, line := range lines[lo:hi] {
		if abort && i >= f.maxLines {
			panic(http.ErrAbortHandler) // cut the stream mid-lease
		}
		w.Write(append(line, '\n'))
		w.(http.Flusher).Flush()
	}
}

// exportLines renders every scenario's canonical JSONL line, indexed by
// scenario index.
func exportLines(t *testing.T, scs []campaign.Scenario) [][]byte {
	t.Helper()
	recs, err := campaign.RunAll(context.Background(), scs, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := campaign.NewOrderedWriter(&buf, scs)
	for _, rec := range recs {
		if err := w.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(buf.Bytes(), []byte("\n")), []byte("\n"))
	out := make([][]byte, len(lines))
	for i, l := range lines {
		out[i] = append([]byte(nil), l...)
	}
	return out
}

func TestFleetSurvivesMidStreamDeath(t *testing.T) {
	m := testMatrix()
	want := localExport(t, m)

	sub := obs.Default.Subscribe(obs.SubOptions{Buffer: 1 << 12})
	defer sub.Close()

	flaky := &flakyWorker{t: t, maxLines: 2}
	flaky.remaining.Store(2) // two leases die mid-stream, then behave
	fw := httptest.NewServer(flaky)
	defer fw.Close()
	good := startWorker(t, serve.Options{Workers: 2})

	var got bytes.Buffer
	res, err := Run(context.Background(), m, Options{
		Workers:       []string{fw.URL, good.URL},
		LeaseSize:     4,
		Records:       &got,
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Error("fleet export with a dying worker differs from the single-machine export")
	}
	if res.Merged != res.Total || len(res.Quarantined) != 0 {
		t.Errorf("merged %d of %d, quarantined %v", res.Merged, res.Total, res.Quarantined)
	}
	fails := 0
	for _, ws := range res.Workers {
		fails += ws.Fails
	}
	if fails == 0 {
		t.Error("no lease attempt failed; the fault was not injected")
	}

	types := map[obs.Type]int{}
	for {
		ev, ok := sub.TryNext()
		if !ok {
			break
		}
		types[ev.Type]++
	}
	for _, want := range []obs.Type{obs.FleetWorkerDown, obs.FleetLeaseFail, obs.FleetLeaseGrant, obs.FleetLeaseDone} {
		if types[want] == 0 {
			t.Errorf("no %s event emitted (got %v)", want, types)
		}
	}
}

// poisonWorker serves real records except for ranges touching a poisoned
// index, which always fail: the quarantine path.
type poisonWorker struct {
	t      *testing.T
	poison int
}

func (p *poisonWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		w.WriteHeader(http.StatusOK)
		return
	}
	lo, _ := strconv.Atoi(r.URL.Query().Get("lo"))
	hi, _ := strconv.Atoi(r.URL.Query().Get("hi"))
	if lo <= p.poison && p.poison < hi {
		http.Error(w, "simulated poison range", http.StatusInternalServerError)
		return
	}
	var m campaign.Matrix
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	scs, err := m.Expand()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	for _, line := range exportLines(p.t, scs)[lo:hi] {
		w.Write(append(line, '\n'))
	}
}

func TestFleetQuarantinesPoisonRange(t *testing.T) {
	m := testMatrix()
	want := localExport(t, m)
	const poison = 5

	pw := httptest.NewServer(&poisonWorker{t: t, poison: poison})
	defer pw.Close()

	var got bytes.Buffer
	res, err := Run(context.Background(), m, Options{
		Workers:       []string{pw.URL},
		LeaseSize:     1, // isolate the poison to its own lease
		MaxAttempts:   2,
		Records:       &got,
		ProbeInterval: 10 * time.Millisecond,
		RetryBase:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0] != (Range{Lo: poison, Hi: poison + 1}) {
		t.Fatalf("quarantined %v, want [{%d %d}]", res.Quarantined, poison, poison+1)
	}
	if res.Merged != res.Total-1 {
		t.Errorf("merged %d, want %d", res.Merged, res.Total-1)
	}
	// The export must be the full one minus exactly the poisoned line.
	wantLines := bytes.Split(bytes.TrimSuffix(want, []byte("\n")), []byte("\n"))
	expect := bytes.Join(append(append([][]byte{}, wantLines[:poison]...), wantLines[poison+1:]...), []byte("\n"))
	expect = append(expect, '\n')
	if !bytes.Equal(got.Bytes(), expect) {
		t.Error("quarantined export is not the full export minus the poisoned line")
	}
}

// throttlingWorker answers 429 for the first rejects requests, then defers
// to a real pool: admission-control backoff must retry without counting
// failures.
type throttlingWorker struct {
	rejects atomic.Int64
	real    http.Handler
}

func (tw *throttlingWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/campaign") && tw.rejects.Add(-1) >= 0 {
		w.Header().Set("Retry-After", "0") // malformed on purpose: falls back to RetryBase
		w.WriteHeader(http.StatusTooManyRequests)
		return
	}
	tw.real.ServeHTTP(w, r)
}

func TestFleetHonours429Backoff(t *testing.T) {
	m := testMatrix()
	want := localExport(t, m)

	pool := serve.New(serve.Options{Workers: 2})
	defer pool.Close()
	tw := &throttlingWorker{real: pool.Handler()}
	tw.rejects.Store(3)
	ts := httptest.NewServer(tw)
	defer ts.Close()

	var got bytes.Buffer
	res, err := Run(context.Background(), m, Options{
		Workers:   []string{ts.URL},
		LeaseSize: 4,
		Records:   &got,
		RetryBase: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Error("throttled fleet export differs from the single-machine export")
	}
	for _, ws := range res.Workers {
		if ws.Fails != 0 {
			t.Errorf("worker %s counted %d failures; throttling must not count as lease failure", ws.Addr, ws.Fails)
		}
	}
	if tw.rejects.Load() > 0 {
		t.Error("the 429 path was never exercised")
	}
}

func TestStealSplitsStraggler(t *testing.T) {
	c, err := New(testMatrix(), Options{Workers: []string{"http://a:1", "http://b:1"}})
	if err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pending = nil
	straggler := c.newLease(0, 10, 0)
	straggler.next = 2
	straggler.worker = "http://a:1"
	c.roster["http://a:1"].busy = 1
	c.active[straggler.id] = straggler

	if !c.stealLocked() {
		t.Fatal("stealLocked refused with an idle worker and an 8-wide straggler")
	}
	if straggler.hi != 6 {
		t.Errorf("victim hi = %d, want 6 (midpoint of [2, 10))", straggler.hi)
	}
	if len(c.pending) != 1 || c.pending[0].lo != 6 || c.pending[0].hi != 10 {
		t.Fatalf("stolen lease = %+v, want [6, 10)", c.pending)
	}
	// Below StealMin nothing is worth splitting.
	straggler.next = straggler.hi - 2
	if c.stealLocked() {
		t.Error("stealLocked split a range narrower than StealMin")
	}
}

func TestJoinAndHeartbeatHandler(t *testing.T) {
	c, err := New(testMatrix(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	post := func(path, addr string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(fmt.Sprintf(`{"addr":%q}`, addr)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post("/v1/fleet/join", "127.0.0.1:9001"); resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %s", resp.Status)
	}
	// A heartbeat from an unknown worker is a join (coordinator restart).
	if resp := post("/v1/fleet/heartbeat", "127.0.0.1:9002"); resp.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat-join: %s", resp.Status)
	}
	if resp := post("/v1/fleet/join", "not a url://"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed join: %s, want 400", resp.Status)
	}
	c.mu.Lock()
	for _, addr := range []string{"http://127.0.0.1:9001", "http://127.0.0.1:9002"} {
		w, ok := c.roster[addr]
		if !ok || !w.up || !w.dynamic {
			t.Errorf("worker %s not registered as a live dynamic worker (%+v)", addr, w)
		}
	}
	c.mu.Unlock()

	// Peer discovery: the join/heartbeat response lists the other up
	// workers (sorted, requester excluded) for the store-peer fetcher.
	resp := post("/v1/fleet/heartbeat", "127.0.0.1:9001")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat: %s", resp.Status)
	}
	var jr struct {
		OK    bool     `json:"ok"`
		Peers []string `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if !jr.OK || len(jr.Peers) != 1 || jr.Peers[0] != "http://127.0.0.1:9002" {
		t.Fatalf("heartbeat response = %+v, want the one other worker as peer", jr)
	}
}

func TestMergerArbitraryOrderAndDuplicates(t *testing.T) {
	const total = 64
	lines := make([][]byte, total)
	for i := range lines {
		lines[i] = []byte(fmt.Sprintf(`{"index":%d}`, i))
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		var out bytes.Buffer
		var seen []int
		mg := newMerger(total, &out, func(rec campaign.Record) { seen = append(seen, rec.Index) })

		absentLo := rng.Intn(total)
		absentHi := absentLo + rng.Intn(total-absentLo)
		order := rng.Perm(total)
		marked := false
		for pos, idx := range order {
			if !marked && pos == total/2 {
				mg.markAbsent(absentLo, absentHi)
				marked = true
			}
			fresh := mg.add(idx, append([]byte(nil), lines[idx]...), campaign.Record{Scenario: campaign.Scenario{Index: idx}})
			if fresh && mg.add(idx, append([]byte(nil), lines[idx]...), campaign.Record{Scenario: campaign.Scenario{Index: idx}}) {
				t.Fatalf("duplicate add of index %d accepted", idx)
			}
		}
		if !marked {
			mg.markAbsent(absentLo, absentHi)
		}
		if !mg.done() {
			t.Fatalf("trial %d: merger not done after all indices fed", trial)
		}

		// Every index outside the absent range must have merged; an absent
		// index may have slipped in only if it was added before the mark.
		// The output must be exactly the merged indices' lines, in strictly
		// increasing index order.
		merged := make(map[int]bool, len(seen))
		for i := 1; i < len(seen); i++ {
			if seen[i] <= seen[i-1] {
				t.Fatalf("trial %d: OnRecord order not strictly increasing: %v", trial, seen)
			}
		}
		for _, idx := range seen {
			merged[idx] = true
		}
		var want bytes.Buffer
		for i := 0; i < total; i++ {
			if i < absentLo || i >= absentHi {
				if !merged[i] {
					t.Fatalf("trial %d: index %d outside the absent range never merged", trial, i)
				}
			}
			if merged[i] {
				want.Write(append(lines[i], '\n'))
			}
		}
		if !bytes.Equal(out.Bytes(), want.Bytes()) {
			t.Fatalf("trial %d: merged bytes do not match the index-ordered lines", trial)
		}
		if mg.Written() != len(seen) {
			t.Fatalf("trial %d: Written() = %d, records seen %d", trial, mg.Written(), len(seen))
		}
	}
}

func TestParseWorkers(t *testing.T) {
	good := []struct {
		in   string
		want []string
	}{
		{"host:8080", []string{"http://host:8080"}},
		{"a:1,b:2", []string{"http://a:1", "http://b:2"}},
		{" a:1 , b:2 ", []string{"http://a:1", "http://b:2"}},
		{"https://secure:443", []string{"https://secure:443"}},
		{"http://h:1/", []string{"http://h:1"}},
	}
	for _, tc := range good {
		got, err := ParseWorkers(tc.in)
		if err != nil {
			t.Errorf("ParseWorkers(%q): %v", tc.in, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("ParseWorkers(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParseWorkers(%q)[%d] = %q, want %q", tc.in, i, got[i], tc.want[i])
			}
		}
	}
	bad := []string{
		"",
		",",
		"a:1,",
		"a:1,a:1",
		"a:1,http://a:1", // same address after normalisation
		"ftp://a:1",
		"http://",
		"a:1/path",
		"a:1?q=1",
	}
	for _, in := range bad {
		if got, err := ParseWorkers(in); err == nil {
			t.Errorf("ParseWorkers(%q) = %v, want error", in, got)
		}
	}
}

// TestFleetRunTwice pins the single-use contract.
func TestFleetRunTwice(t *testing.T) {
	w := startWorker(t, serve.Options{Workers: 1})
	c, err := New(campaign.Matrix{Sizes: []int{8}, Seeds: []int64{1}, Models: []string{"lazy"}, Tasks: []campaign.Task{campaign.TaskCoordinate}},
		Options{Workers: []string{w.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err == nil {
		t.Fatal("second Run did not fail")
	}
}
