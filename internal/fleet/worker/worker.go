// Package worker is the fleet membership agent a ringd daemon runs when
// started with -join: it registers the daemon's advertised base URL with the
// coordinator (POST /v1/fleet/join) and keeps the registration alive with
// periodic heartbeats.  The agent is deliberately thin — all campaign work
// still arrives through the daemon's ordinary /v1/campaign endpoint; joining
// only makes the worker visible to the coordinator's lease manager.
//
// Registration is crash-tolerant in both directions: the agent retries a
// coordinator that is not up yet (workers and coordinator can start in any
// order), and the coordinator treats a heartbeat from an unknown address as
// a join (a restarted coordinator re-learns its fleet within one heartbeat
// interval).
package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Options configures the membership agent.
type Options struct {
	// Coordinator is the coordinator's base URL (as ParseWorkers accepts).
	Coordinator string
	// Advertise is this worker's base URL as the coordinator should dial it.
	Advertise string
	// Interval is the heartbeat cadence; defaults to 5 seconds (a third of
	// the coordinator's default expiry window).
	Interval time.Duration
	// Client is the HTTP client; defaults to one with a 5-second timeout
	// (join and heartbeat are tiny control-plane calls).
	Client *http.Client
	// Logf, when non-nil, receives join/retry diagnostics.
	Logf func(format string, args ...any)
	// OnPeers, when non-nil, receives the coordinator's current list of
	// other up workers after every successful join/heartbeat exchange —
	// the automatic peer discovery feeding the store-peer fetcher
	// (internal/store.Peers.Set).  Called with the response's list verbatim
	// (possibly empty); never called on a failed exchange, so a worker
	// keeps its last known peers across a coordinator outage.
	OnPeers func(peers []string)
}

// joinResponse is the (lenient) shape of a join/heartbeat response; older
// coordinators omit peers.
type joinResponse struct {
	OK       bool     `json:"ok"`
	Interval string   `json:"interval"`
	Peers    []string `json:"peers"`
}

// Start runs the join/heartbeat loop until ctx ends.  It blocks; run it in
// its own goroutine.  Failures are retried at the heartbeat cadence — a
// worker never gives up on its coordinator, because lease traffic is
// unaffected either way.
func Start(ctx context.Context, opts Options) {
	if opts.Interval <= 0 {
		opts.Interval = 5 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	body, _ := json.Marshal(map[string]string{"addr": opts.Advertise})

	post := func(path string) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.Coordinator+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
			return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
		}
		if opts.OnPeers != nil {
			// Decode leniently: a response without (or with a malformed)
			// peer list is still a successful registration.
			var jr joinResponse
			if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&jr) == nil {
				opts.OnPeers(jr.Peers)
			}
		}
		return nil
	}

	joined := false
	t := time.NewTicker(opts.Interval)
	defer t.Stop()
	for {
		path := "/v1/fleet/heartbeat"
		if !joined {
			path = "/v1/fleet/join"
		}
		if err := post(path); err != nil {
			if joined {
				logf("fleet: heartbeat to %s failed: %v", opts.Coordinator, err)
			} else {
				logf("fleet: join %s failed (will retry): %v", opts.Coordinator, err)
			}
			joined = false
		} else if !joined {
			joined = true
			logf("fleet: joined coordinator %s as %s", opts.Coordinator, opts.Advertise)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}
