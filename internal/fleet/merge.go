package fleet

import (
	"io"

	"ringsym/internal/campaign"
	"ringsym/internal/obs"
)

// merger reassembles per-lease record streams into scenario-index order.
//
// Byte-identity is achieved by construction, not by re-serialisation: the
// merger keeps the raw JSONL line each worker streamed (workers run the same
// exporter a local sweep does, so their lines are already the canonical
// encoding) and writes those bytes verbatim once the index-order watermark
// reaches them.  Records are parsed only for the OnRecord callback and the
// scenario.finish events — never re-marshalled onto the output path.
//
// Out-of-order arrival is the normal case (leases complete independently),
// so lines park in a pending map until the watermark catches up — the same
// shape as campaign.OrderedWriter, one level up.  Duplicate indices (a steal
// racing a victim's final records) are dropped on arrival: first write wins,
// which is safe because records are pure functions of their scenario.
// Quarantined ranges are marked absent so the watermark can pass over the
// hole and the sweep can finish around it.
type merger struct {
	total   int
	next    int // watermark: first index not yet written or skipped
	written int
	out     io.Writer
	onRec   func(campaign.Record)

	lines  map[int][]byte
	recs   map[int]campaign.Record
	absent map[int]bool

	err error // first write error; poisons the rest of the merge
}

func newMerger(total int, out io.Writer, onRec func(campaign.Record)) *merger {
	return &merger{
		total:  total,
		out:    out,
		onRec:  onRec,
		lines:  make(map[int][]byte),
		recs:   make(map[int]campaign.Record),
		absent: make(map[int]bool),
	}
}

// add accepts one record line from a worker stream.  It reports whether the
// index was fresh (false for duplicates and out-of-range indices, which are
// dropped).  line must be the worker's raw JSONL bytes without the trailing
// newline; the merger owns it after the call.  Callers hold the
// coordinator's mutex.
func (mg *merger) add(index int, line []byte, rec campaign.Record) bool {
	if index < mg.next || index >= mg.total {
		return false
	}
	if _, dup := mg.lines[index]; dup || mg.absent[index] {
		return false
	}
	mg.lines[index] = line
	mg.recs[index] = rec
	mg.drain()
	return true
}

// markAbsent records that [lo, hi) will never arrive (quarantined), letting
// the watermark advance past the hole.  Callers hold the coordinator's
// mutex.
func (mg *merger) markAbsent(lo, hi int) {
	for i := lo; i < hi; i++ {
		if i >= mg.next && !mg.absent[i] {
			mg.absent[i] = true
			delete(mg.lines, i)
			delete(mg.recs, i)
		}
	}
	mg.drain()
}

// drain advances the watermark, writing parked lines in index order.
func (mg *merger) drain() {
	for mg.next < mg.total {
		if mg.absent[mg.next] {
			delete(mg.absent, mg.next)
			mg.next++
			continue
		}
		line, ok := mg.lines[mg.next]
		if !ok {
			return
		}
		delete(mg.lines, mg.next)
		rec := mg.recs[mg.next]
		delete(mg.recs, mg.next)
		if mg.out != nil && mg.err == nil {
			if _, err := mg.out.Write(append(line, '\n')); err != nil {
				mg.err = err
			}
		}
		mg.written++
		mg.next++
		mg.emit(rec)
		if mg.onRec != nil {
			mg.onRec(rec)
		}
	}
}

// emit mirrors the campaign runner's per-scenario events for merged records,
// so downstream consumers (ringfarm top, NDJSON sinks) see a fleet sweep in
// the same vocabulary as a local one.  WallMicros is zero: wall time was
// spent on the worker and deliberately does not travel in records.
func (mg *merger) emit(rec campaign.Record) {
	if !obs.On() {
		return
	}
	ev := obs.Event{
		Type: obs.ScenarioFinish, Level: obs.LevelInfo,
		Task: string(rec.Task), Model: rec.Model, N: rec.N, Seed: rec.Seed, Index: rec.Index,
		Status: string(rec.Status), Cache: rec.Cache,
		Rounds: int64(rec.Rounds),
	}
	if rec.Status == campaign.StatusFailed {
		ev.Type, ev.Level, ev.Err = obs.ScenarioError, obs.LevelError, rec.Error
	}
	obs.Emit(ev)
	if mg.written%checkpointEvery == 0 {
		obs.Emit(obs.Event{Type: obs.CampaignCheckpoint, Level: obs.LevelInfo, Done: mg.written, Total: mg.total})
	}
}

// checkpointEvery matches the campaign runner's checkpoint cadence.
const checkpointEvery = 1000

// done reports whether every index was written or skipped.
func (mg *merger) done() bool { return mg.next >= mg.total }

// Written returns the number of record lines merged into the output.
func (mg *merger) Written() int { return mg.written }
