package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"ringsym/internal/campaign"
	"ringsym/internal/obs"
)

// maxLineBytes bounds one record line on the wire; records with task Extra
// payloads can outgrow bufio.Scanner's 64 KiB default.
const maxLineBytes = 1 << 20

// runLease drives one granted lease to its end and retires it.  It owns the
// lease from grant to endLeaseLocked; the coordinator only touches l.hi (a
// steal) and l.cancel/l.lastProgress (the stall watchdog) in between, all
// under c.mu.
func (c *Coordinator) runLease(ctx context.Context, w *worker, l *lease) {
	cause, dead := c.streamLease(ctx, w, l)
	c.mu.Lock()
	defer c.mu.Unlock()
	if dead && ctx.Err() == nil {
		// A transport-level failure marks the worker down: whether the
		// daemon died or the network to it did, granting it more work
		// before a successful /healthz probe would just burn attempts.  An
		// HTTP-level error (non-200 status) does not — the daemon is alive
		// and answering; only that lease's range is suspect.
		c.markDownLocked(w, cause)
	}
	c.endLeaseLocked(w, l, cause)
}

// streamLease POSTs the lease range to the worker and merges the record
// stream back.  It returns cause == "" when the remaining range [next, hi)
// was fully streamed (including the hi==next case after a steal took
// everything) and a failure cause otherwise; dead reports whether the
// failure was transport-level (connection or stream death, as opposed to an
// HTTP error from a live daemon).  429 throttling loops internally with
// jittered backoff rather than counting as failure.
func (c *Coordinator) streamLease(ctx context.Context, w *worker, l *lease) (cause string, dead bool) {
	for {
		c.mu.Lock()
		lo, hi := l.next, l.hi
		c.mu.Unlock()
		if lo >= hi {
			return "", false
		}

		// Arm the stall watchdog's cancel for this stream.
		sctx, cancel := context.WithCancel(ctx)
		url := fmt.Sprintf("%s/v1/campaign?lo=%d&hi=%d", w.addr, lo, hi)
		req, err := http.NewRequestWithContext(sctx, http.MethodPost, url, bytes.NewReader(c.matrixBody))
		if err != nil {
			cancel()
			return "building request: " + err.Error(), false
		}
		req.Header.Set("Content-Type", "application/json")
		c.mu.Lock()
		l.cancel = cancel
		l.lastProgress = obs.Now()
		c.mu.Unlock()

		resp, err := c.client.Do(req)
		if err != nil {
			cancel()
			return "request: " + err.Error(), true
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			cancel()
			if !c.backoff(ctx, resp.Header.Get("Retry-After")) {
				return "cancelled during throttle backoff", false
			}
			continue // throttling is load-shedding, not lease failure
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			cancel()
			return fmt.Sprintf("worker returned %d: %s", resp.StatusCode, bytes.TrimSpace(body)), false
		}

		cause = c.consume(resp.Body, w, l)
		resp.Body.Close()
		cancel()
		c.mu.Lock()
		finished := l.next >= l.hi
		c.mu.Unlock()
		if finished {
			return "", false
		}
		// Every consume failure is stream-level: the connection died, the
		// stream truncated, or the worker spoke garbage — all reasons to
		// stop granting to this worker until a probe clears it.
		return cause, true
	}
}

// consume reads one response stream line by line, merging each record.  The
// worker streams its range in index order (serve uses OrderedWriter), so
// the lease watermark advances contiguously.  Reading stops early — without
// error — once the lease's hi bound passes below the incoming index, which
// is how a steal victim hands off the split range mid-stream.
func (c *Coordinator) consume(body io.Reader, w *worker, l *lease) string {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var rec campaign.Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return "undecodable record line: " + err.Error()
		}
		line := append([]byte(nil), raw...)
		c.mu.Lock()
		if rec.Index >= l.hi {
			// A steal shrank the lease under us: everything owed is merged,
			// the rest belongs to the thief.  Abandon the stream.
			c.mu.Unlock()
			return ""
		}
		if rec.Index != l.next {
			c.mu.Unlock()
			return fmt.Sprintf("out-of-order stream: got index %d, want %d", rec.Index, l.next)
		}
		c.merger.add(rec.Index, line, rec)
		l.next = rec.Index + 1
		now := obs.Now()
		l.lastProgress = now
		w.lastSeen = now
		w.records++
		c.mu.Unlock()
	}
	if err := sc.Err(); err != nil {
		return "stream: " + err.Error()
	}
	return "short stream"
}

// backoff sleeps a jittered throttle delay, preferring the worker's
// Retry-After hint.  Returns false when the context ended first.  The
// jitter source is seeded (Options.JitterSeed) and only shapes retry
// timing — artefact bytes are independent of it.
func (c *Coordinator) backoff(ctx context.Context, retryAfter string) bool {
	d := c.opts.RetryBase
	if secs, err := strconv.Atoi(retryAfter); err == nil && secs > 0 {
		d = time.Duration(secs) * time.Second
	}
	c.mu.Lock()
	d = d/2 + time.Duration(c.rng.Int63n(int64(d)))
	c.mu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
