// Package fleet coordinates one campaign across a fleet of ringd workers:
// the step from "one big box" to horizontal scale.
//
// The coordinator expands the scenario matrix exactly once — with the same
// deterministic campaign.Matrix.Expand every local sweep uses — and splits
// the index space [0, total) into contiguous lease ranges.  Each lease is
// dispatched to a worker as a POST /v1/campaign request carrying the matrix
// spec plus the range (?lo=&hi=, see internal/serve); the worker streams its
// records back as JSONL in index order, and a streaming merger reassembles
// the per-lease streams so the final records.jsonl is byte-identical to a
// single-machine run of the same spec.  That byte-identity is the package's
// core invariant, and it rests on three facts: expansion is deterministic,
// every record is a pure function of its scenario, and any partition of the
// index space into ranges merged back in index order reproduces the
// unsharded export (the generalization of the PR 1 shard-union property,
// pinned by test at both the campaign and the merger layer).
//
// Fault handling keeps a sweep moving instead of wedging it:
//
//   - A worker that dies mid-stream (connection drop, daemon kill) has the
//     unstreamed remainder of its lease re-queued and granted to another
//     worker; the records it already streamed stay merged, so nothing is
//     recomputed and nothing is lost.
//   - A straggling lease is split ("work stealing"): when workers sit idle
//     and no leases are pending, the coordinator shrinks the straggler to
//     [watermark, mid) and grants [mid, hi) to an idle worker.  The victim's
//     reader simply stops consuming at the new boundary, so victim and thief
//     never produce overlapping indices.
//   - A range that keeps failing is quarantined after Options.MaxAttempts
//     attempts and reported in Result.Quarantined (and as a
//     fleet.lease.quarantine event) instead of blocking the merge; the sweep
//     completes with a hole the caller can see and re-run.
//   - A worker answering 429 (serve admission control) is backed off with a
//     jittered Retry-After delay; throttling is routine load-shedding, not a
//     lease failure.
//
// Workers arrive on the roster two ways: a static list (ringfarm
// -workers host:8080,host:8081) probed for liveness, and dynamic
// registration (ringd -join) through the coordinator's HTTP handler
// (POST /v1/fleet/join + periodic /v1/fleet/heartbeat, see roster.go).
//
// Everything the coordinator does is visible on the structured-event spine
// (internal/obs): fleet.worker.up/down, fleet.lease.grant/done/steal/fail/
// quarantine, plus the standard campaign.start/checkpoint/finish and a
// scenario.finish per merged record, so `ringfarm top` renders fleet sweeps
// — including per-worker rows — exactly like local ones.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"ringsym/internal/campaign"
	"ringsym/internal/obs"
)

// Options configures a fleet run.
type Options struct {
	// Workers is the static roster: worker base URLs as returned by
	// ParseWorkers.  It may be empty when the coordinator's Handler is
	// served and workers join dynamically (ringd -join).
	Workers []string
	// LeaseSize is the number of scenario indices per initial lease; 0
	// picks total/(4·workers) (at least 1) so every worker sees several
	// leases and a straggler costs at most a lease, not the sweep.
	LeaseSize int
	// MaxAttempts bounds how often one range is re-leased after failures
	// before it is quarantined; defaults to 3.
	MaxAttempts int
	// StealMin is the smallest remaining range worth splitting off a
	// straggler; defaults to 4 indices.
	StealMin int
	// StallTimeout cancels a lease whose stream has made no progress for
	// this long (a wedged-but-connected worker); defaults to 2 minutes.
	StallTimeout time.Duration
	// HeartbeatTimeout expires a dynamically joined worker that stopped
	// heartbeating and holds no lease; defaults to 15 seconds.  Static
	// workers never expire — they are probed back to life after failures.
	HeartbeatTimeout time.Duration
	// ProbeInterval is the coordinator's housekeeping cadence (stall
	// checks, heartbeat expiry, re-probing down workers); defaults to
	// 500 milliseconds.
	ProbeInterval time.Duration
	// RetryBase is the base delay for jittered backoff after a 429 without
	// a Retry-After hint; defaults to 250 milliseconds.
	RetryBase time.Duration
	// JitterSeed seeds the backoff jitter; 0 uses a fixed seed.  The seed
	// only shapes retry timing, never artefact bytes.
	JitterSeed int64
	// Records, when non-nil, receives the merged JSONL stream: every
	// worker-produced record line, byte for byte, in scenario-index order.
	Records io.Writer
	// OnRecord, when non-nil, is called for every merged record in
	// scenario-index order (after its line reached Records).  Callers use
	// it for aggregation and progress; it runs under the coordinator's
	// lock, so it must not call back into the Coordinator.
	OnRecord func(campaign.Record)
	// Client is the HTTP client for worker requests; defaults to a
	// deadline-free client (campaign streams are long-lived; per-stream
	// liveness is the stall watchdog's job).
	Client *http.Client
}

const (
	defaultMaxAttempts      = 3
	defaultStealMin         = 4
	defaultStallTimeout     = 2 * time.Minute
	defaultHeartbeatTimeout = 15 * time.Second
	defaultProbeInterval    = 500 * time.Millisecond
	defaultRetryBase        = 250 * time.Millisecond
	// leasesPerWorker is the initial-split target: enough leases per worker
	// that re-leasing a failure costs a fraction of the sweep, few enough
	// that per-lease HTTP overhead stays negligible.
	leasesPerWorker = 4
)

// Range is a contiguous scenario-index range [Lo, Hi).
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// WorkerStats reports one worker's contribution to a finished run.
type WorkerStats struct {
	// Addr is the worker's base URL.
	Addr string `json:"addr"`
	// Up reports the worker's liveness at the end of the run.
	Up bool `json:"up"`
	// Records is the number of record lines the worker streamed into the
	// merge.
	Records int64 `json:"records"`
	// Leases is the number of leases the worker completed.
	Leases int `json:"leases"`
	// Fails is the number of lease attempts that failed on the worker.
	Fails int `json:"fails"`
}

// Result summarises a finished (or cancelled) fleet run.
type Result struct {
	// Total is the size of the expanded index space.
	Total int `json:"total"`
	// Merged is the number of records merged into the output.
	Merged int `json:"merged"`
	// Quarantined lists the index ranges abandoned after MaxAttempts
	// failed lease attempts, sorted by Lo.  Empty on a clean run — and only
	// then is the output byte-identical to a single-machine sweep.
	Quarantined []Range `json:"quarantined,omitempty"`
	// Workers reports per-worker contributions, sorted by address.
	Workers []WorkerStats `json:"workers"`
}

// Coordinator drives one campaign across a worker fleet.  Construct with
// New, optionally serve Handler for dynamic joins, then call Run once.
type Coordinator struct {
	opts       Options
	matrixBody []byte
	total      int
	client     *http.Client

	mu          sync.Mutex
	roster      map[string]*worker
	pending     []*lease // granted in order; index 0 is next
	active      map[int]*lease
	nextLeaseID int
	quarantined []Range
	merger      *merger
	rng         *rand.Rand
	running     bool

	// kick wakes the grant loop after any state change (lease end, join,
	// heartbeat, probe success).  Buffered so notifiers never block.
	kick chan struct{}
}

// New expands the matrix once and prepares a coordinator over the static
// roster in opts.Workers (which ParseWorkers should have validated).  The
// expansion is the same deterministic campaign.Matrix.Expand a local sweep
// runs, so the coordinator's index space is exactly the one every worker
// recomputes from the posted spec.
func New(m campaign.Matrix, opts Options) (*Coordinator, error) {
	scenarios, err := m.Expand()
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("fleet: encoding matrix spec: %w", err)
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = defaultMaxAttempts
	}
	if opts.StealMin <= 0 {
		opts.StealMin = defaultStealMin
	}
	if opts.StallTimeout <= 0 {
		opts.StallTimeout = defaultStallTimeout
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = defaultHeartbeatTimeout
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = defaultProbeInterval
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = defaultRetryBase
	}
	seed := opts.JitterSeed
	if seed == 0 {
		seed = 1
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	c := &Coordinator{
		opts:       opts,
		matrixBody: body,
		total:      len(scenarios),
		client:     client,
		roster:     make(map[string]*worker),
		active:     make(map[int]*lease),
		merger:     newMerger(len(scenarios), opts.Records, opts.OnRecord),
		rng:        rand.New(rand.NewSource(seed)),
		kick:       make(chan struct{}, 1),
	}
	c.pending = c.initialLeases()
	for _, addr := range opts.Workers {
		c.addWorkerLocked(addr, false) // no lock needed yet: New is single-threaded
	}
	return c, nil
}

// initialLeases splits [0, total) into contiguous ranges of the configured
// (or derived) lease size.
func (c *Coordinator) initialLeases() []*lease {
	size := c.opts.LeaseSize
	if size <= 0 {
		workers := len(c.opts.Workers)
		if workers == 0 {
			// Listen-only roster: assume a small fleet will join.
			workers = 2
		}
		size = c.total / (leasesPerWorker * workers)
		if size < 1 {
			size = 1
		}
	}
	var out []*lease
	for lo := 0; lo < c.total; lo += size {
		hi := lo + size
		if hi > c.total {
			hi = c.total
		}
		out = append(out, c.newLease(lo, hi, 0))
	}
	return out
}

// Run drives the sweep to completion: granting leases, re-leasing failures,
// stealing from stragglers and merging streams, until every index is merged
// or quarantined.  It returns the context's error when cancelled mid-sweep;
// a completed run with failures reports them in Result.Quarantined instead
// of an error, so a partial artefact is always accompanied by an exact
// account of its holes.  Run must be called at most once.
func (c *Coordinator) Run(ctx context.Context) (Result, error) {
	c.mu.Lock()
	if c.running {
		c.mu.Unlock()
		return Result{}, fmt.Errorf("fleet: Run called twice")
	}
	c.running = true
	c.mu.Unlock()

	if obs.On() {
		obs.Emit(obs.Event{Type: obs.CampaignStart, Level: obs.LevelInfo, Total: c.total})
	}

	// Every worker request derives from runCtx so returning from Run —
	// completion or cancellation — unwinds all in-flight streams before the
	// caller regains ownership of the Records sink.
	runCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	var wg sync.WaitGroup
	defer wg.Wait()

	ticker := time.NewTicker(c.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		c.mu.Lock()
		c.grantLocked(runCtx, &wg)
		if c.stealLocked() {
			c.grantLocked(runCtx, &wg)
		}
		done := c.merger.done()
		c.mu.Unlock()
		if done {
			break
		}
		select {
		case <-ctx.Done():
			return c.result(), ctx.Err()
		case <-c.kick:
		case <-ticker.C:
			c.housekeep(runCtx)
		}
	}
	if obs.On() {
		obs.Emit(obs.Event{Type: obs.CampaignFinish, Level: obs.LevelInfo, Done: c.merger.Written(), Total: c.total})
	}
	return c.result(), nil
}

// kickLoop wakes the grant loop; safe under or outside the lock.
func (c *Coordinator) kickLoop() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// grantLocked hands pending leases to idle, live workers (sorted by address
// so the assignment is reproducible for a fixed roster and timing).
func (c *Coordinator) grantLocked(ctx context.Context, wg *sync.WaitGroup) {
	if len(c.pending) == 0 {
		return
	}
	for _, w := range c.sortedWorkersLocked() {
		if len(c.pending) == 0 {
			return
		}
		if !w.up || w.busy > 0 {
			continue
		}
		l := c.pending[0]
		c.pending = c.pending[1:]
		l.worker = w.addr
		l.lastProgress = obs.Now()
		w.busy++
		c.active[l.id] = l
		if obs.On() {
			obs.Emit(obs.Event{Type: obs.FleetLeaseGrant, Level: obs.LevelInfo, Worker: w.addr, Lo: l.next, Hi: l.hi})
		}
		wg.Add(1)
		go func(w *worker, l *lease) {
			defer wg.Done()
			c.runLease(ctx, w, l)
		}(w, l)
	}
}

// stealLocked splits the largest remaining range off a straggling active
// lease when workers would otherwise idle: the victim's bound shrinks to the
// midpoint of its remaining range and the split-off half joins the pending
// queue.  Returns true when a steal happened (the caller grants again).
func (c *Coordinator) stealLocked() bool {
	if len(c.pending) > 0 {
		return false
	}
	idle := 0
	for _, w := range c.roster {
		if w.up && w.busy == 0 {
			idle++
		}
	}
	if idle == 0 {
		return false
	}
	var victim *lease
	remaining := 0
	for _, l := range c.active {
		if r := l.hi - l.next; r > remaining {
			victim, remaining = l, r
		}
	}
	if victim == nil || remaining < c.opts.StealMin {
		return false
	}
	mid := victim.next + remaining/2
	if mid <= victim.next || mid >= victim.hi {
		return false
	}
	stolen := c.newLease(mid, victim.hi, victim.attempts)
	victim.hi = mid
	c.pending = append(c.pending, stolen)
	if obs.On() {
		obs.Emit(obs.Event{Type: obs.FleetLeaseSteal, Level: obs.LevelInfo, Worker: victim.worker, Lo: mid, Hi: stolen.hi})
	}
	return true
}

// housekeep runs the periodic liveness work: cancel stalled leases, expire
// silent dynamic workers, re-probe down workers.
func (c *Coordinator) housekeep(ctx context.Context) {
	now := obs.Now()
	var probes []*worker
	c.mu.Lock()
	for _, l := range c.active {
		if now-l.lastProgress > int64(c.opts.StallTimeout) {
			l.lastProgress = now // one cancellation per stall detection
			l.cancel()
		}
	}
	for _, w := range c.sortedWorkersLocked() {
		switch {
		case w.up && w.dynamic && w.busy == 0 && now-w.lastSeen > int64(c.opts.HeartbeatTimeout):
			c.markDownLocked(w, "heartbeat timeout")
		case !w.up && !w.probing && now >= w.retryAt:
			w.probing = true
			probes = append(probes, w)
		}
	}
	c.mu.Unlock()
	for _, w := range probes {
		go c.probe(ctx, w)
	}
}

// result snapshots the run outcome.
func (c *Coordinator) result() Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	res := Result{
		Total:       c.total,
		Merged:      c.merger.Written(),
		Quarantined: append([]Range(nil), c.quarantined...),
	}
	sort.Slice(res.Quarantined, func(i, j int) bool { return res.Quarantined[i].Lo < res.Quarantined[j].Lo })
	for _, w := range c.roster {
		res.Workers = append(res.Workers, WorkerStats{
			Addr: w.addr, Up: w.up, Records: w.records, Leases: w.completed, Fails: w.fails,
		})
	}
	sort.Slice(res.Workers, func(i, j int) bool { return res.Workers[i].Addr < res.Workers[j].Addr })
	return res
}

// Run executes the matrix across the fleet in opts and returns the merged
// outcome: the one-call form of New + Coordinator.Run for static rosters.
func Run(ctx context.Context, m campaign.Matrix, opts Options) (Result, error) {
	c, err := New(m, opts)
	if err != nil {
		return Result{}, err
	}
	return c.Run(ctx)
}
