package fleet

import (
	"fmt"
	"net/url"
	"strings"
)

// ParseWorkers validates and normalises a comma-separated worker roster
// ("host1:8080,host2:8080") into base URLs.  The discipline matches the
// campaign ParseShard flag parser: every malformed input is rejected up
// front with an error naming the offending entry and the accepted form,
// because a roster typo that surfaces only as a mid-sweep connection error
// is a debugging session, not a usage message.
//
// Each entry may be a bare host:port or a full http:// / https:// URL; a
// schemeless entry gets http://.  Entries must not carry a path, query or
// fragment (the coordinator owns the endpoint layout), must resolve to a
// non-empty host, and must be unique after normalisation (trailing slashes
// stripped).  Empty entries — including the empty list — are errors.
func ParseWorkers(s string) ([]string, error) {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	seen := make(map[string]int, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf(`fleet: empty worker address at position %d in %q (want "host:port[,host:port...]")`, i+1, s)
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		u, err := url.Parse(p)
		if err != nil {
			return nil, fmt.Errorf("fleet: bad worker address %q: %v", parts[i], err)
		}
		if u.Scheme != "http" && u.Scheme != "https" {
			return nil, fmt.Errorf("fleet: bad worker address %q: scheme %q (want http or https)", parts[i], u.Scheme)
		}
		if u.Host == "" {
			return nil, fmt.Errorf("fleet: bad worker address %q: no host", parts[i])
		}
		if (u.Path != "" && u.Path != "/") || u.RawQuery != "" || u.Fragment != "" {
			return nil, fmt.Errorf("fleet: bad worker address %q: must be a bare base URL without path or query", parts[i])
		}
		addr := u.Scheme + "://" + u.Host
		if at, dup := seen[addr]; dup {
			return nil, fmt.Errorf("fleet: duplicate worker address %q (positions %d and %d)", addr, at, i+1)
		}
		seen[addr] = i + 1
		out = append(out, addr)
	}
	return out, nil
}
