package geom

import (
	"testing"
	"testing/quick"
)

func TestNewRejectsBadCircumference(t *testing.T) {
	for _, c := range []int64{0, -2, 1, 3, 999} {
		if _, err := New(c); err == nil {
			t.Errorf("New(%d): expected error", c)
		}
	}
	if _, err := New(1024); err != nil {
		t.Fatalf("New(1024): %v", err)
	}
}

func TestNormRange(t *testing.T) {
	c := MustNew(100)
	cases := map[int64]int64{
		0: 0, 99: 99, 100: 0, 101: 1, -1: 99, -100: 0, -101: 99, 250: 50,
	}
	for in, want := range cases {
		if got := c.Norm(in); got != want {
			t.Errorf("Norm(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestCWandCCWDist(t *testing.T) {
	c := MustNew(100)
	if got := c.CWDist(10, 30); got != 20 {
		t.Errorf("CWDist(10,30) = %d, want 20", got)
	}
	if got := c.CWDist(30, 10); got != 80 {
		t.Errorf("CWDist(30,10) = %d, want 80", got)
	}
	if got := c.CCWDist(10, 30); got != 80 {
		t.Errorf("CCWDist(10,30) = %d, want 80", got)
	}
	if got := c.CCWDist(30, 10); got != 20 {
		t.Errorf("CCWDist(30,10) = %d, want 20", got)
	}
}

func TestDistComplementProperty(t *testing.T) {
	c := MustNew(1 << 20)
	f := func(a, b int64) bool {
		a, b = c.Norm(a), c.Norm(b)
		cw, ccw := c.CWDist(a, b), c.CCWDist(a, b)
		if a == b {
			return cw == 0 && ccw == 0
		}
		return cw+ccw == c.Circ() && cw > 0 && ccw > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddInverseProperty(t *testing.T) {
	c := MustNew(1 << 16)
	f := func(p, d int64) bool {
		p = c.Norm(p)
		return c.Add(c.Add(p, d), -d) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContains(t *testing.T) {
	c := MustNew(100)
	if !c.Contains(90, 20, 5) {
		t.Error("arc [90, 90+20] should contain 5 (wraps)")
	}
	if c.Contains(90, 20, 11) {
		t.Error("arc [90, 90+20] should not contain 11")
	}
	if !c.Contains(10, 0, 10) {
		t.Error("zero-length arc contains its endpoint")
	}
}

func TestCanonicalize(t *testing.T) {
	out, perm, err := Canonicalize(100, []int64{50, 10, 99})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 50, 99}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
	if perm[0] != 1 || perm[1] != 0 || perm[2] != 2 {
		t.Fatalf("perm = %v", perm)
	}
	if _, _, err := Canonicalize(100, []int64{10, 10}); err == nil {
		t.Error("expected duplicate position error")
	}
	if _, _, err := Canonicalize(100, []int64{10, 100}); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, _, err := Canonicalize(100, []int64{-1}); err == nil {
		t.Error("expected out-of-range error for negative")
	}
}

func TestGapsSumToCircumference(t *testing.T) {
	c := MustNew(100)
	pos := []int64{0, 10, 45, 80}
	gaps := c.Gaps(pos)
	want := []int64{10, 35, 35, 20}
	var sum int64
	for i := range gaps {
		if gaps[i] != want[i] {
			t.Fatalf("gaps = %v, want %v", gaps, want)
		}
		sum += gaps[i]
	}
	if sum != c.Circ() {
		t.Fatalf("gaps sum = %d, want %d", sum, c.Circ())
	}
}

func TestSortedDistinct(t *testing.T) {
	if !SortedDistinct(100, []int64{0, 1, 99}) {
		t.Error("sorted distinct slice rejected")
	}
	if SortedDistinct(100, []int64{0, 0}) {
		t.Error("duplicate accepted")
	}
	if SortedDistinct(100, []int64{5, 3}) {
		t.Error("unsorted accepted")
	}
	if SortedDistinct(100, []int64{0, 100}) {
		t.Error("out of range accepted")
	}
}
