// Package geom provides exact integer arithmetic on a circle.
//
// The ring of the paper has circumference 1; this package represents it with
// an integer circumference C ("ticks").  All positions are integers in
// [0, C).  Observable quantities of the model (dist(), coll()) are reported
// in half-ticks elsewhere so that midpoints of integer gaps stay exact; this
// package itself only deals in whole ticks.
package geom

import (
	"errors"
	"fmt"
	"sort"
)

// ErrBadCircumference is returned when a circle is constructed with a
// non-positive or odd circumference.
var ErrBadCircumference = errors.New("geom: circumference must be positive and even")

// Circle is a circle with integer circumference.  Positions grow in the
// clockwise direction and wrap at Circ.
//
// The zero value is not usable; construct with New.
type Circle struct {
	circ int64
}

// New returns a circle of circumference circ.  The circumference must be
// positive and even so that midpoints of arcs between integer positions are
// representable in half-ticks.
func New(circ int64) (Circle, error) {
	if circ <= 0 || circ%2 != 0 {
		return Circle{}, fmt.Errorf("%w: got %d", ErrBadCircumference, circ)
	}
	return Circle{circ: circ}, nil
}

// MustNew is New but panics on error.  It is intended for tests and examples
// with constant arguments.
func MustNew(circ int64) Circle {
	c, err := New(circ)
	if err != nil {
		panic(err)
	}
	return c
}

// Circ returns the circumference in ticks.
func (c Circle) Circ() int64 { return c.circ }

// Norm maps an arbitrary integer onto the canonical position range [0, Circ).
func (c Circle) Norm(x int64) int64 {
	x %= c.circ
	if x < 0 {
		x += c.circ
	}
	return x
}

// Add moves position p by d ticks clockwise (d may be negative).
func (c Circle) Add(p, d int64) int64 { return c.Norm(p + d) }

// CWDist returns the clockwise arc length from from to to, in [0, Circ).
func (c Circle) CWDist(from, to int64) int64 { return c.Norm(to - from) }

// CCWDist returns the anticlockwise arc length from from to to, in [0, Circ).
func (c Circle) CCWDist(from, to int64) int64 { return c.Norm(from - to) }

// Contains reports whether position p lies on the closed clockwise arc that
// starts at from and extends d ticks (0 <= d < Circ).
func (c Circle) Contains(from, d, p int64) bool {
	return c.CWDist(from, p) <= c.Norm(d)
}

// SortedDistinct reports whether positions are strictly increasing and all lie
// in [0, circ).  The engine requires configurations in this canonical form so
// that the i-th position is the i-th agent in clockwise order.
func SortedDistinct(circ int64, positions []int64) bool {
	for i, p := range positions {
		if p < 0 || p >= circ {
			return false
		}
		if i > 0 && positions[i-1] >= p {
			return false
		}
	}
	return true
}

// Canonicalize sorts positions clockwise starting from the smallest and
// verifies they are distinct and within range.  It returns a new slice and
// the permutation perm such that out[i] = positions[perm[i]].
func Canonicalize(circ int64, positions []int64) (out []int64, perm []int, err error) {
	n := len(positions)
	perm = make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return positions[perm[a]] < positions[perm[b]] })
	out = make([]int64, n)
	for i, p := range perm {
		v := positions[p]
		if v < 0 || v >= circ {
			return nil, nil, fmt.Errorf("geom: position %d out of range [0,%d)", v, circ)
		}
		out[i] = v
		if i > 0 && out[i-1] == v {
			return nil, nil, fmt.Errorf("geom: duplicate position %d", v)
		}
	}
	return out, perm, nil
}

// Gaps returns the clockwise gaps between consecutive positions: gap[i] is the
// arc from positions[i] to positions[(i+1)%n].  positions must be sorted
// clockwise (see SortedDistinct); the gaps sum to the circumference.
func (c Circle) Gaps(positions []int64) []int64 {
	n := len(positions)
	gaps := make([]int64, n)
	for i := 0; i < n; i++ {
		gaps[i] = c.CWDist(positions[i], positions[(i+1)%n])
	}
	return gaps
}
