package ringsym_test

import (
	"reflect"
	"testing"

	"ringsym"
)

// buildNet generates one network of the given shape; called once per runtime
// so each arm starts from an identical configuration.
func buildNet(t *testing.T, model ringsym.Model, n int, mixed bool, seed int64) *ringsym.Network {
	t.Helper()
	nw, err := ringsym.RandomNetwork(ringsym.RandomConfig{
		N: n, Model: model, MixedChirality: mixed, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestRuntimeDifferentialCoordinate pins the three runtimes to each other on
// the full coordination pipeline: for every model × parity × chirality shape,
// the FSM scheduler (v3), the barrier runtime (v2) and the legacy
// channel-rendezvous runtime (v1) must produce deep-equal results, identical
// round counts, and — for v3 vs v2 — identical crossing counts (v1 executes
// one crossing per round by construction, so its invariant is
// crossings == rounds).
func TestRuntimeDifferentialCoordinate(t *testing.T) {
	for _, model := range []ringsym.Model{ringsym.Basic, ringsym.Lazy, ringsym.Perceptive} {
		for _, n := range []int{7, 8, 11, 12} {
			for _, mixed := range []bool{false, true} {
				for seed := int64(1); seed <= 3; seed++ {
					opts := ringsym.CoordinationOptions{Seed: seed}

					nwF := buildNet(t, model, n, mixed, seed)
					opts.Runtime = ringsym.RuntimeFSM
					resF, errF := nwF.Coordinate(opts)

					nwB := buildNet(t, model, n, mixed, seed)
					opts.Runtime = ringsym.RuntimeBarrier
					resB, errB := nwB.Coordinate(opts)

					nwL := buildNet(t, model, n, mixed, seed)
					opts.Runtime = ringsym.RuntimeLegacy
					resL, errL := nwL.Coordinate(opts)

					if (errF == nil) != (errB == nil) || (errF == nil) != (errL == nil) {
						t.Fatalf("model=%v n=%d mixed=%v seed=%d: error disagreement fsm=%v barrier=%v legacy=%v",
							model, n, mixed, seed, errF, errB, errL)
					}
					if errF != nil {
						if errF.Error() != errB.Error() || errF.Error() != errL.Error() {
							t.Fatalf("model=%v n=%d mixed=%v seed=%d: error text disagreement fsm=%q barrier=%q legacy=%q",
								model, n, mixed, seed, errF, errB, errL)
						}
						continue
					}
					if !reflect.DeepEqual(resF, resB) || !reflect.DeepEqual(resF, resL) {
						t.Fatalf("model=%v n=%d mixed=%v seed=%d: result disagreement\nfsm:     %+v\nbarrier: %+v\nlegacy:  %+v",
							model, n, mixed, seed, resF, resB, resL)
					}
					if nwF.Rounds() != nwB.Rounds() || nwF.Rounds() != nwL.Rounds() {
						t.Fatalf("model=%v n=%d mixed=%v seed=%d: rounds disagreement fsm=%d barrier=%d legacy=%d",
							model, n, mixed, seed, nwF.Rounds(), nwB.Rounds(), nwL.Rounds())
					}
					if cf, cb := nwF.Engine().Crossings(), nwB.Engine().Crossings(); cf != cb {
						t.Fatalf("model=%v n=%d mixed=%v seed=%d: crossings disagreement fsm=%d barrier=%d",
							model, n, mixed, seed, cf, cb)
					}
					if cl := nwL.Engine().Crossings(); cl != nwL.Rounds() {
						t.Fatalf("model=%v n=%d mixed=%v seed=%d: legacy crossings %d != rounds %d",
							model, n, mixed, seed, cl, nwL.Rounds())
					}
				}
			}
		}
	}
}

// TestRuntimeDifferentialDiscover does the same for the location-discovery
// dispatch, covering the lazy sweep, the odd-n basic/perceptive sweep and the
// even-n perceptive Section V pipeline.
func TestRuntimeDifferentialDiscover(t *testing.T) {
	cases := []struct {
		model ringsym.Model
		n     int
		mixed bool
	}{
		{ringsym.Lazy, 8, true},
		{ringsym.Lazy, 9, false},
		{ringsym.Basic, 9, true},
		{ringsym.Perceptive, 9, true},
		{ringsym.Perceptive, 8, true},
		{ringsym.Perceptive, 12, false},
	}
	for _, tc := range cases {
		for seed := int64(1); seed <= 2; seed++ {
			opts := ringsym.DiscoveryOptions{Seed: seed}

			nwF := buildNet(t, tc.model, tc.n, tc.mixed, seed)
			opts.Runtime = ringsym.RuntimeFSM
			resF, errF := nwF.DiscoverLocations(opts)

			nwB := buildNet(t, tc.model, tc.n, tc.mixed, seed)
			opts.Runtime = ringsym.RuntimeBarrier
			resB, errB := nwB.DiscoverLocations(opts)

			nwL := buildNet(t, tc.model, tc.n, tc.mixed, seed)
			opts.Runtime = ringsym.RuntimeLegacy
			resL, errL := nwL.DiscoverLocations(opts)

			if errF != nil || errB != nil || errL != nil {
				t.Fatalf("model=%v n=%d seed=%d: fsm=%v barrier=%v legacy=%v",
					tc.model, tc.n, seed, errF, errB, errL)
			}
			if !reflect.DeepEqual(resF, resB) || !reflect.DeepEqual(resF, resL) {
				t.Fatalf("model=%v n=%d seed=%d: result disagreement\nfsm:     %+v\nbarrier: %+v\nlegacy:  %+v",
					tc.model, tc.n, seed, resF, resB, resL)
			}
			if nwF.Rounds() != nwB.Rounds() || nwF.Rounds() != nwL.Rounds() {
				t.Fatalf("model=%v n=%d seed=%d: rounds disagreement fsm=%d barrier=%d legacy=%d",
					tc.model, tc.n, seed, nwF.Rounds(), nwB.Rounds(), nwL.Rounds())
			}
			if cf, cb := nwF.Engine().Crossings(), nwB.Engine().Crossings(); cf != cb {
				t.Fatalf("model=%v n=%d seed=%d: crossings disagreement fsm=%d barrier=%d",
					tc.model, tc.n, seed, cf, cb)
			}
			if cl := nwL.Engine().Crossings(); cl != nwL.Rounds() {
				t.Fatalf("model=%v n=%d seed=%d: legacy crossings %d != rounds %d",
					tc.model, tc.n, seed, cl, nwL.Rounds())
			}
		}
	}
}

// TestRuntimeDefaultIsFSM pins the default resolution: an unset Runtime must
// resolve to the FSM scheduler, and SetDefaultRuntime must steer it.
func TestRuntimeDefaultIsFSM(t *testing.T) {
	if got := ringsym.RuntimeDefault.Resolve(); got != ringsym.RuntimeFSM {
		t.Fatalf("default runtime resolves to %v, want %v", got, ringsym.RuntimeFSM)
	}
	ringsym.SetDefaultRuntime(ringsym.RuntimeBarrier)
	defer ringsym.SetDefaultRuntime(ringsym.RuntimeDefault)
	if got := ringsym.RuntimeDefault.Resolve(); got != ringsym.RuntimeBarrier {
		t.Fatalf("after SetDefaultRuntime(barrier): resolves to %v", got)
	}
}
