package ringsym_test

import (
	"context"
	"fmt"
	"math"
	"testing"

	"ringsym/internal/campaign"
	"ringsym/internal/core"
	"ringsym/internal/engine"
	"ringsym/internal/eval"
	"ringsym/internal/netgen"
	"ringsym/internal/rcomm"
	"ringsym/internal/ring"
)

// The benchmarks below regenerate the paper's evaluation artefacts: one
// benchmark per row of Table I and Table II, one per reduction figure
// (Figures 1 and 2), one for the RingDist machinery of Figure 3 and one for
// the distinguisher sizes of Section IV.  Each reports the measured number of
// rounds per problem as benchmark metrics, next to the wall-clock cost of the
// simulation itself.  cmd/benchtables prints the same data as readable
// tables, and EXPERIMENTS.md records a reference run.

var benchSizes = []int{16, 32, 64, 128}

func benchSetting(b *testing.B, s eval.Setting) {
	for _, rawN := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", rawN), func(b *testing.B) {
			var nm, da, le, ld int
			for i := 0; i < b.N; i++ {
				n := rawN
				if s.OddN {
					n++
				}
				idBound := 4 * n
				var err error
				nm, da, le, err = eval.MeasureCoordination(s, n, idBound, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				total, _, _, solvable, err := eval.MeasureLocationDiscovery(s, n, idBound, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				if solvable {
					ld = total
				}
			}
			b.ReportMetric(float64(nm), "nontrivial-rounds")
			b.ReportMetric(float64(da), "diragree-rounds")
			b.ReportMetric(float64(le), "leader-rounds")
			b.ReportMetric(float64(ld), "locdiscovery-rounds")
		})
	}
}

// BenchmarkTable1OddN regenerates Table I, row "odd n".
func BenchmarkTable1OddN(b *testing.B) {
	benchSetting(b, eval.Setting{Name: "odd n", Model: ring.Basic, OddN: true})
}

// BenchmarkTable1BasicEven regenerates Table I, row "basic model, even n".
func BenchmarkTable1BasicEven(b *testing.B) {
	benchSetting(b, eval.Setting{Name: "basic model, even n", Model: ring.Basic})
}

// BenchmarkTable1LazyEven regenerates Table I, row "lazy model, even n".
func BenchmarkTable1LazyEven(b *testing.B) {
	benchSetting(b, eval.Setting{Name: "lazy model, even n", Model: ring.Lazy})
}

// BenchmarkTable1PerceptiveEven regenerates Table I, row "perceptive model,
// even n".
func BenchmarkTable1PerceptiveEven(b *testing.B) {
	benchSetting(b, eval.Setting{Name: "perceptive model, even n", Model: ring.Perceptive})
}

// BenchmarkTable2 regenerates Table II (common sense of direction), one
// sub-benchmark per row.
func BenchmarkTable2(b *testing.B) {
	for _, s := range eval.Table2Settings() {
		b.Run(s.Name, func(b *testing.B) {
			benchSetting(b, s)
		})
	}
}

// BenchmarkFigure1Reductions measures the reduction arrows of Figure 1
// (odd n / lazy / perceptive settings).
func BenchmarkFigure1Reductions(b *testing.B) {
	var rs []eval.Reduction
	for i := 0; i < b.N; i++ {
		var err error
		rs, err = eval.MeasureReductions(eval.Setting{Model: ring.Lazy}, 32, 128, int64(i))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rs {
		b.ReportMetric(float64(r.Rounds), fmt.Sprintf("%s->%s-rounds", shortProblem(r.From), shortProblem(r.To)))
	}
}

// BenchmarkFigure2Reductions measures the reduction arrows of Figure 2 (basic
// model, even n).
func BenchmarkFigure2Reductions(b *testing.B) {
	var rs []eval.Reduction
	for i := 0; i < b.N; i++ {
		var err error
		rs, err = eval.MeasureReductions(eval.Setting{Model: ring.Basic}, 32, 128, int64(i))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rs {
		b.ReportMetric(float64(r.Rounds), fmt.Sprintf("%s->%s-rounds", shortProblem(r.From), shortProblem(r.To)))
	}
}

func shortProblem(p eval.Problem) string {
	switch p {
	case eval.LeaderElection:
		return "LE"
	case eval.NontrivialMove:
		return "NM"
	case eval.DirectionAgreement:
		return "DA"
	default:
		return "LD"
	}
}

// BenchmarkFigure3RingDist measures the cost of the ring-distance discovery
// stage (Algorithm 5, illustrated by Figure 3) across sizes.
func BenchmarkFigure3RingDist(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				samples, err := eval.MeasureRingDist([]int{n}, 4, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				rounds = samples[0].Rounds
			}
			b.ReportMetric(float64(rounds), "ringdist-rounds")
		})
	}
}

// BenchmarkDistinguisherSize measures the minimal (N,n)-distinguisher
// prefixes of the pseudo-random schedule (Section IV, Corollary 29).  The
// verification is exhaustive, so the universes are small.
func BenchmarkDistinguisherSize(b *testing.B) {
	pairs := [][2]int{{8, 2}, {12, 2}, {16, 2}, {10, 3}}
	var samples []eval.DistinguisherSample
	for i := 0; i < b.N; i++ {
		var err error
		samples, err = eval.MeasureDistinguishers(pairs, int64(i))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range samples {
		b.ReportMetric(float64(s.MinPrefix), fmt.Sprintf("N%d-n%d-prefix", s.Universe, s.SubsetSize))
	}
}

// BenchmarkLowerBounds compares measured location-discovery round counts with
// the Lemma 6 lower bounds (n−1 for basic/lazy, n/2 for perceptive).
func BenchmarkLowerBounds(b *testing.B) {
	for _, tc := range []struct {
		name  string
		model ring.Model
		n     int
	}{
		{"lazy", ring.Lazy, 64},
		{"perceptive", ring.Perceptive, 64},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := eval.Setting{Model: tc.model}
			var total int
			for i := 0; i < b.N; i++ {
				t, _, _, _, err := eval.MeasureLocationDiscovery(s, tc.n, 4*tc.n, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				total = t
			}
			b.ReportMetric(float64(total), "measured-rounds")
			lower := tc.n - 1
			if tc.model == ring.Perceptive {
				lower = tc.n / 2
			}
			b.ReportMetric(float64(lower), "lemma6-lower-bound")
		})
	}
}

// BenchmarkAblationDissemination compares the two dissemination strategies of
// the communication layer (DESIGN.md ablation): the generic O(p·d) flooding
// of Corollary 33 versus the pipelined O(p+d) sparse dissemination of
// Corollary 34, measured in rounds for the same task.
func BenchmarkAblationDissemination(b *testing.B) {
	run := func(b *testing.B, sparse bool) {
		const payloadBits, distance = 10, 8
		var rounds int
		for i := 0; i < b.N; i++ {
			cfg := netgen.MustGenerate(netgen.Options{N: 24, Seed: int64(i), Model: ring.Perceptive, MixedChirality: true, ForceSplitChirality: true})
			nw, err := engine.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			res, err := engine.Run(nw, func(a *engine.Agent) (int, error) {
				link, err := rcomm.Establish(core.NewFrame(a))
				if err != nil {
					return 0, err
				}
				before := a.RoundsUsed()
				isSource := a.ID()%8 == 1
				if sparse {
					_, _, err = link.DisseminateSparse(isSource, uint64(a.ID()), payloadBits, distance)
				} else {
					_, _, err = link.Disseminate(isSource, uint64(a.ID()), payloadBits, distance)
				}
				if err != nil {
					return 0, err
				}
				return a.RoundsUsed() - before, nil
			})
			if err != nil {
				b.Fatal(err)
			}
			rounds = res.Outputs[0]
		}
		b.ReportMetric(float64(rounds), "dissemination-rounds")
	}
	b.Run("generic-corollary33", func(b *testing.B) { run(b, false) })
	b.Run("sparse-corollary34", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationNontrivialDetection compares the weak (rotation != 0, one
// round per candidate) and strong (Lemma 2 classification, two rounds per
// candidate) nontrivial-move detection used with the Theorem 27 schedule.
func BenchmarkAblationNontrivialDetection(b *testing.B) {
	run := func(b *testing.B, weak bool) {
		var rounds int
		for i := 0; i < b.N; i++ {
			cfg := netgen.MustGenerate(netgen.Options{N: 32, Seed: int64(i), Model: ring.Basic, MixedChirality: true, ForceSplitChirality: true})
			nw, err := engine.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			res, err := engine.Run(nw, func(a *engine.Agent) (int, error) {
				f := core.NewFrame(a)
				if weak {
					_, _, err := core.WeakNontrivialMoveEven(f, int64(i))
					return f.RoundsUsed(), err
				}
				_, err := core.NontrivialMoveEven(f, int64(i))
				return f.RoundsUsed(), err
			})
			if err != nil {
				b.Fatal(err)
			}
			rounds = res.Outputs[0]
		}
		b.ReportMetric(float64(rounds), "rounds")
	}
	b.Run("weak", func(b *testing.B) { run(b, true) })
	b.Run("strong", func(b *testing.B) { run(b, false) })
}

// BenchmarkCampaignThroughput measures the scenario throughput of the
// campaign runner (scenarios/sec) on a fixed sweep spanning all models, both
// parities and both chirality regimes, once sequentially (one worker) and
// once on the full GOMAXPROCS pool; the parallel variant demonstrates the
// multi-core speedup of the worker pool over sequential execution.
func BenchmarkCampaignThroughput(b *testing.B) {
	scenarios, err := campaign.Matrix{Sizes: []int{8, 12}, Seeds: []int64{1, 2, 3}}.Expand()
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, workers int) {
		for i := 0; i < b.N; i++ {
			recs, err := campaign.RunAll(context.Background(), scenarios, campaign.Options{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			for _, rec := range recs {
				if rec.Status == campaign.StatusFailed {
					b.Fatalf("%s: %s", rec.Key(), rec.Error)
				}
			}
		}
		b.ReportMetric(float64(b.N)*float64(len(scenarios))/b.Elapsed().Seconds(), "scenarios/sec")
	}
	b.Run("sequential", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, 0) })

	// Symmetric-heavy variant: every setting appears in 8 outcome-equivalent
	// framings (4 phases × 2 reflections).  The cached run canonicalizes each
	// scenario and computes one representative per orbit (internal/canon +
	// internal/memo), so the cached-vs-uncached records/sec ratio is the
	// symmetry-dedup speedup recorded in EXPERIMENTS.md.
	symmetric, err := campaign.Matrix{
		Sizes:       []int{8, 12},
		Seeds:       []int64{1, 2, 3},
		Phases:      []int{0, 1, 2, 3},
		Reflections: []bool{false, true},
	}.Expand()
	if err != nil {
		b.Fatal(err)
	}
	runSym := func(b *testing.B, cached bool) {
		for i := 0; i < b.N; i++ {
			opts := campaign.Options{}
			if cached {
				// A fresh cache per iteration: the measured ratio is the
				// within-sweep dedup win, not a warm-cache artifact.
				opts.Cache = campaign.NewCache(0)
			}
			recs, err := campaign.RunAll(context.Background(), symmetric, opts)
			if err != nil {
				b.Fatal(err)
			}
			for _, rec := range recs {
				if rec.Status == campaign.StatusFailed {
					b.Fatalf("%s: %s", rec.Key(), rec.Error)
				}
			}
		}
		b.ReportMetric(float64(b.N)*float64(len(symmetric))/b.Elapsed().Seconds(), "records/sec")
	}
	b.Run("symmetric-uncached", func(b *testing.B) { runSym(b, false) })
	b.Run("symmetric-cached", func(b *testing.B) { runSym(b, true) })
}

// benchEngineRound measures the raw cost of a single synchronised round
// (goroutine barrier plus the analytic collision engine) on the given
// runtime, reporting rounds/sec.  run is engine.Run (the v2 direct-dispatch
// barrier) or engine.RunLegacy (the v1 channel rendezvous kept as baseline);
// the v1-vs-v2 ratio is the speedup recorded in EXPERIMENTS.md.
func benchEngineRound(b *testing.B, run func(*engine.Network, func(*engine.Agent) (int, error)) (*engine.Result[int], error)) {
	for _, n := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfg := netgen.MustGenerate(netgen.Options{N: n, Seed: 1, Model: ring.Perceptive})
			cfg.MaxRounds = math.MaxInt
			nw, err := engine.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			rounds := b.N
			_, err = run(nw, func(a *engine.Agent) (int, error) {
				dir := ring.Clockwise
				if a.ID()%2 == 0 {
					dir = ring.Anticlockwise
				}
				for i := 0; i < rounds; i++ {
					if _, err := a.Round(dir); err != nil {
						return 0, err
					}
					dir = dir.Opposite()
				}
				return 0, nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
		})
	}
}

// BenchmarkEngineRound measures the v2 direct-dispatch runtime.
func BenchmarkEngineRound(b *testing.B) {
	benchEngineRound(b, engine.Run[int])
}

// BenchmarkEngineRoundLegacy measures the retained v1 channel-rendezvous
// runtime on the same workload, for direct comparison with
// BenchmarkEngineRound.
func BenchmarkEngineRoundLegacy(b *testing.B) {
	benchEngineRound(b, engine.RunLegacy[int])
}

// BenchmarkEngineLeap measures leap execution on the constant-direction sweep
// workload: every agent keeps a fixed direction (both directions present) and
// submits it in doubling batches via RoundN, so each barrier crossing
// executes a whole closed-form stretch.  The per-round baseline for the
// leap-vs-single speedup recorded in EXPERIMENTS.md is
// BenchmarkEngineLeapSingle, the identical workload submitted one round at a
// time (the v2 per-round path).
func BenchmarkEngineLeap(b *testing.B) {
	benchEngineSweep(b, 512)
}

// BenchmarkEngineLeapSingle is the per-round baseline of BenchmarkEngineLeap.
func BenchmarkEngineLeapSingle(b *testing.B) {
	benchEngineSweep(b, 1)
}

// benchEngineSweep drives the shared constant-direction sweep workload
// (eval.EngineSweepProtocol, the same workload benchtables -engine measures)
// with the given batch size (1 = the per-round path) and reports rounds/sec.
func benchEngineSweep(b *testing.B, batch int) {
	for _, n := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			nw, err := eval.EngineSweepNetwork(n, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, err := engine.Run(nw, eval.EngineSweepProtocol(b.N, batch)); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
		})
	}
}
