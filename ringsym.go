// Package ringsym is a Go reproduction of "Deterministic Symmetry Breaking in
// Ring Networks" (Gąsieniec, Jurdziński, Martin, Stachowiak — ICDCS 2015,
// arXiv:1504.07127).
//
// The paper studies n mobile agents with unique identifiers on a circle of
// circumference 1.  Agents move in synchronised rounds at unit speed, bounce
// off each other elastically, cannot communicate, and at the end of each
// round learn only limited information about their own trajectory: the net
// displacement dist() and — in the perceptive model — the distance coll() to
// their first collision.  The paper determines the deterministic complexity
// of four problems in this model: the nontrivial move problem, direction
// agreement, leader election and location discovery.
//
// This package is the public facade over the full implementation:
//
//   - Network wraps a simulated ring of agents (exact integer geometry; the
//     default runtime steps every agent's protocol as a resumable state
//     machine on one scheduler goroutine, with the older goroutine-per-agent
//     runtimes selectable per call);
//   - Coordinate runs the symmetry-breaking pipeline of the paper
//     (nontrivial move → direction agreement → leader election);
//   - DiscoverLocations runs location discovery with the best algorithm for
//     the model and parity (Lemma 16 or Theorem 42);
//   - Run exposes the raw per-agent runtime for custom protocols.
//
// The sub-packages under internal/ contain the substrates (geometry, physics,
// engine, combinatorics, communication layer) and the individual algorithms;
// see DESIGN.md for the full inventory and EXPERIMENTS.md for the
// reproduction of the paper's tables and figures.
package ringsym

import (
	"context"
	"errors"
	"fmt"

	"ringsym/internal/core"
	"ringsym/internal/discovery"
	"ringsym/internal/engine"
	"ringsym/internal/netgen"
	"ringsym/internal/perceptive"
	"ringsym/internal/ring"
)

// Model selects the movement model of the paper.
type Model = ring.Model

// Movement models.
const (
	// Basic: every agent must move each round; only dist() is observed.
	Basic = ring.Basic
	// Lazy: agents may also stay idle.
	Lazy = ring.Lazy
	// Perceptive: as Basic, plus the coll() observable.
	Perceptive = ring.Perceptive
)

// Direction is an agent's action for a round, in its own frame.
type Direction = ring.Direction

// Directions.
const (
	Idle          = ring.Idle
	Clockwise     = ring.Clockwise
	Anticlockwise = ring.Anticlockwise
)

// Agent is the handle a protocol uses to act in the network.
type Agent = engine.Agent

// Runtime selects the synchronisation substrate a pipeline runs on.  All
// runtimes produce byte-identical observations, outputs and round counts;
// they differ only in scheduling cost.
type Runtime = engine.Runtime

// Runtimes.
const (
	// RuntimeDefault resolves to the process-wide default (the FSM scheduler
	// unless overridden with SetDefaultRuntime).
	RuntimeDefault = engine.RuntimeDefault
	// RuntimeFSM is the v3 single-goroutine scheduler over resumable state
	// machines.
	RuntimeFSM = engine.RuntimeFSM
	// RuntimeBarrier is the v2 goroutine-per-agent barrier runtime.
	RuntimeBarrier = engine.RuntimeBarrier
	// RuntimeLegacy is the v1 channel-rendezvous runtime (no cancellation).
	RuntimeLegacy = engine.RuntimeLegacy
)

// SetDefaultRuntime changes what RuntimeDefault resolves to, process-wide.
func SetDefaultRuntime(rt Runtime) { engine.SetDefaultRuntime(rt) }

// Observation is what an agent learns at the end of a round.
type Observation = engine.Observation

// ErrVerification is returned when a protocol outcome contradicts the ground
// truth of the simulated network.
var ErrVerification = errors.New("ringsym: verification failed")

// Config describes a network.
type Config struct {
	// Model is the movement model (Basic, Lazy or Perceptive).
	Model Model
	// Circumference of the ring in ticks (positive, even).  The paper's unit
	// circle corresponds to any value; observations are reported in
	// half-ticks.
	Circumference int64
	// Positions are the agents' starting positions in ticks, sorted strictly
	// clockwise.
	Positions []int64
	// IDs are the agents' unique identifiers, in [1, IDBound], by ring index.
	IDs []int
	// IDBound is the publicly known bound N on identifiers.
	IDBound int
	// Chirality[i] is true when agent i's private clockwise equals the global
	// clockwise; nil means all agents are oriented the same way.
	Chirality []bool
	// MaxRounds aborts runaway protocols (0 = a large default).
	MaxRounds int
}

// RandomConfig controls RandomNetwork.
type RandomConfig struct {
	// N is the number of agents (> 4).
	N int
	// IDBound is N of the paper; defaults to 4·N.
	IDBound int
	// Model is the movement model; defaults to Perceptive.
	Model Model
	// MixedChirality gives every agent an independent random orientation;
	// when false (the default), all agents share the global orientation.
	MixedChirality bool
	// Seed drives the deterministic pseudo-random generation.
	Seed int64
	// Circumference in ticks; defaults to 1<<20.
	Circumference int64
}

// Network is a simulated ring network.
type Network struct {
	nw *engine.Network
}

// NewNetwork builds a network from an explicit configuration.
func NewNetwork(cfg Config) (*Network, error) {
	nw, err := engine.New(engine.Config{
		Model:     cfg.Model,
		Circ:      cfg.Circumference,
		Positions: cfg.Positions,
		IDs:       cfg.IDs,
		IDBound:   cfg.IDBound,
		Chirality: cfg.Chirality,
		MaxRounds: cfg.MaxRounds,
	})
	if err != nil {
		return nil, err
	}
	return &Network{nw: nw}, nil
}

// RandomNetwork builds a pseudo-random network (deterministic for a fixed
// seed).
func RandomNetwork(cfg RandomConfig) (*Network, error) {
	gen, err := netgen.Generate(netgen.Options{
		N:                   cfg.N,
		IDBound:             cfg.IDBound,
		Circ:                cfg.Circumference,
		Model:               cfg.Model,
		MixedChirality:      cfg.MixedChirality,
		ForceSplitChirality: cfg.MixedChirality,
		Seed:                cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	nw, err := engine.New(gen)
	if err != nil {
		return nil, err
	}
	return &Network{nw: nw}, nil
}

// Reset re-initialises the network in place with a new configuration, reusing
// the previous network's ring state, agent objects and scratch buffers.  It
// validates exactly like NewNetwork; on error the network may be left
// partially updated and must be discarded.  Scenario sweeps (the campaign
// runner) use it to retire one configuration per run without rebuilding the
// network object.
func (n *Network) Reset(cfg Config) error {
	return n.nw.Reset(engine.Config{
		Model:     cfg.Model,
		Circ:      cfg.Circumference,
		Positions: cfg.Positions,
		IDs:       cfg.IDs,
		IDBound:   cfg.IDBound,
		Chirality: cfg.Chirality,
		MaxRounds: cfg.MaxRounds,
	})
}

// N returns the number of agents.
func (n *Network) N() int { return n.nw.N() }

// Model returns the movement model.
func (n *Network) Model() Model { return n.nw.Model() }

// Rounds returns the total number of rounds executed so far.
func (n *Network) Rounds() int { return n.nw.Rounds() }

// IDOf returns the identifier of the agent with the given ring index.
func (n *Network) IDOf(i int) int { return n.nw.IDOf(i) }

// InitialPositions returns the agents' starting positions (ticks) by ring
// index.
func (n *Network) InitialPositions() []int64 { return n.nw.InitialPositions() }

// CurrentPositions returns the agents' current positions (ticks) by ring
// index.
func (n *Network) CurrentPositions() []int64 { return n.nw.CurrentPositions() }

// Engine exposes the underlying runtime for advanced uses (custom protocols
// via Run).
func (n *Network) Engine() *engine.Network { return n.nw }

// Run executes a custom per-agent protocol on every agent concurrently and
// returns the outputs by ring index together with the number of rounds used.
func Run[T any](n *Network, protocol func(a *Agent) (T, error)) ([]T, int, error) {
	return RunContext(context.Background(), n, protocol)
}

// RunContext is Run with cancellation: when ctx is cancelled, the in-flight
// round is aborted and every agent's pending Round call returns an error
// wrapping ctx.Err() within one round, instead of the run continuing until
// the protocol terminates or the round bound is hit.
func RunContext[T any](ctx context.Context, n *Network, protocol func(a *Agent) (T, error)) ([]T, int, error) {
	res, err := engine.RunContext(ctx, n.nw, protocol)
	if err != nil {
		return nil, 0, err
	}
	return res.Outputs, res.Rounds, nil
}

// CoordinationOptions configures Coordinate.
type CoordinationOptions struct {
	// CommonSense promises that all agents share a sense of direction (the
	// paper's Table II setting).  Only set it for networks built without
	// mixed chirality.
	CommonSense bool
	// Seed drives the pseudo-random schedules used for even n.
	Seed int64
	// UsePerceptiveAlgorithms selects the O(√n·log N) Section V algorithms
	// when the model is perceptive (default true for perceptive networks).
	DisablePerceptiveAlgorithms bool
	// Runtime selects the engine runtime (default: the FSM scheduler).
	Runtime Runtime `json:"-"`
}

// AgentCoordination is one agent's coordination outcome.
type AgentCoordination struct {
	ID               int
	IsLeader         bool
	RoundsNontrivial int
	RoundsAgreement  int
	RoundsLeader     int
}

// CoordinationResult aggregates a coordination run.
type CoordinationResult struct {
	// Rounds is the total number of rounds used.
	Rounds int
	// LeaderID is the identifier of the elected leader.
	LeaderID int
	// PerAgent holds the per-agent outcomes by ring index.
	PerAgent []AgentCoordination
}

// Coordinate solves the three coordination problems of the paper (nontrivial
// move, direction agreement, leader election) on every agent and verifies
// that exactly one leader was elected.
func (n *Network) Coordinate(opts CoordinationOptions) (*CoordinationResult, error) {
	return n.CoordinateContext(context.Background(), opts)
}

// CoordinateContext is Coordinate with cancellation: a cancelled ctx aborts
// the pipeline within one round.
func (n *Network) CoordinateContext(ctx context.Context, opts CoordinationOptions) (*CoordinationResult, error) {
	usePerceptive := n.Model() == Perceptive && !opts.DisablePerceptiveAlgorithms && !opts.CommonSense
	var (
		outputs []*core.Coordination
		rounds  int
		err     error
	)
	switch opts.Runtime.Resolve() {
	case engine.RuntimeFSM:
		var res *engine.Result[*core.Coordination]
		res, err = engine.RunFSMContext(ctx, n.nw, func(a *Agent) *engine.Proto[*core.Coordination] {
			if usePerceptive {
				return perceptive.CoordinateMachine(a, perceptive.Options{Seed: opts.Seed})
			}
			return core.CoordinateMachine(a, core.Options{CommonSense: opts.CommonSense, Seed: opts.Seed})
		})
		if res != nil {
			outputs, rounds = res.Outputs, res.Rounds
		}
	case engine.RuntimeLegacy:
		var res *engine.Result[*core.Coordination]
		res, err = engine.RunLegacy(n.nw, func(a *Agent) (*core.Coordination, error) {
			if usePerceptive {
				return perceptive.Coordinate(a, perceptive.Options{Seed: opts.Seed})
			}
			return core.Coordinate(a, core.Options{CommonSense: opts.CommonSense, Seed: opts.Seed})
		})
		if res != nil {
			outputs, rounds = res.Outputs, res.Rounds
		}
	default:
		outputs, rounds, err = RunContext(ctx, n, func(a *Agent) (*core.Coordination, error) {
			if usePerceptive {
				return perceptive.Coordinate(a, perceptive.Options{Seed: opts.Seed})
			}
			return core.Coordinate(a, core.Options{CommonSense: opts.CommonSense, Seed: opts.Seed})
		})
	}
	if err != nil {
		return nil, err
	}
	res := &CoordinationResult{Rounds: rounds, PerAgent: make([]AgentCoordination, len(outputs))}
	leaders := 0
	for i, c := range outputs {
		res.PerAgent[i] = AgentCoordination{
			ID:               n.nw.IDOf(i),
			IsLeader:         c.IsLeader,
			RoundsNontrivial: c.RoundsNontrivial,
			RoundsAgreement:  c.RoundsAgreement,
			RoundsLeader:     c.RoundsLeader,
		}
		if c.IsLeader {
			leaders++
			res.LeaderID = n.nw.IDOf(i)
		}
	}
	if leaders != 1 {
		return nil, fmt.Errorf("%w: %d leaders elected", ErrVerification, leaders)
	}
	return res, nil
}

// DiscoveryOptions configures DiscoverLocations.
type DiscoveryOptions struct {
	// CommonSense promises an a-priori common sense of direction.
	CommonSense bool
	// Seed drives the pseudo-random schedules.
	Seed int64
	// Runtime selects the engine runtime (default: the FSM scheduler).
	Runtime Runtime `json:"-"`
}

// AgentDiscovery is one agent's location-discovery outcome.
type AgentDiscovery struct {
	ID       int
	IsLeader bool
	// N is the number of agents the protocol discovered.
	N int
	// Positions[t] is the arc (in half-ticks, measured in the agent's agreed
	// clockwise direction) from the agent's initial position to the initial
	// position of the agent at ring distance t from it.
	Positions []int64
	// RoundsCoordination and RoundsDiscovery split the cost.
	RoundsCoordination int
	RoundsDiscovery    int
}

// DiscoveryResult aggregates a location-discovery run.
type DiscoveryResult struct {
	Rounds   int
	PerAgent []AgentDiscovery
	// StartPositions are the agents' positions (ticks, by ring index) at the
	// moment the discovery protocol started; the reported maps are relative
	// to these.  They coincide with the initial positions unless other
	// protocols ran on the network beforehand.
	StartPositions []int64
}

// DiscoverLocations solves location discovery with the appropriate algorithm
// for the network's model and parity (Lemma 16 or Theorem 42) and verifies
// every agent's answer against the simulator's ground truth.
func (n *Network) DiscoverLocations(opts DiscoveryOptions) (*DiscoveryResult, error) {
	return n.DiscoverLocationsContext(context.Background(), opts)
}

// DiscoverLocationsContext is DiscoverLocations with cancellation: a
// cancelled ctx aborts the protocol within one round.
func (n *Network) DiscoverLocationsContext(ctx context.Context, opts DiscoveryOptions) (*DiscoveryResult, error) {
	start := n.nw.CurrentPositions()
	dopts := discovery.Options{CommonSense: opts.CommonSense, Seed: opts.Seed}
	var (
		outputs []*discovery.Result
		rounds  int
		err     error
	)
	switch opts.Runtime.Resolve() {
	case engine.RuntimeFSM:
		var res *engine.Result[*discovery.Result]
		res, err = engine.RunFSMContext(ctx, n.nw, func(a *Agent) *engine.Proto[*discovery.Result] {
			return discovery.LocationDiscoveryMachine(a, dopts)
		})
		if res != nil {
			outputs, rounds = res.Outputs, res.Rounds
		}
	case engine.RuntimeLegacy:
		var res *engine.Result[*discovery.Result]
		res, err = engine.RunLegacy(n.nw, func(a *Agent) (*discovery.Result, error) {
			return discovery.LocationDiscovery(a, dopts)
		})
		if res != nil {
			outputs, rounds = res.Outputs, res.Rounds
		}
	default:
		outputs, rounds, err = RunContext(ctx, n, func(a *Agent) (*discovery.Result, error) {
			return discovery.LocationDiscovery(a, dopts)
		})
	}
	if err != nil {
		return nil, err
	}
	res := &DiscoveryResult{Rounds: rounds, PerAgent: make([]AgentDiscovery, len(outputs)), StartPositions: start}
	for i, r := range outputs {
		res.PerAgent[i] = AgentDiscovery{
			ID:                 n.nw.IDOf(i),
			IsLeader:           r.IsLeader,
			N:                  r.N,
			Positions:          r.Positions,
			RoundsCoordination: r.RoundsCoordination,
			RoundsDiscovery:    r.RoundsDiscovery,
		}
	}
	if err := n.VerifyDiscovery(res); err != nil {
		return nil, err
	}
	return res, nil
}

// VerifyDiscovery checks a discovery result against the simulator's ground
// truth: every agent must report the true relative positions of all agents
// (as of the start of the discovery run), in one consistent orientation.
func (n *Network) VerifyDiscovery(res *DiscoveryResult) error {
	pos := res.StartPositions
	if pos == nil {
		pos = n.nw.InitialPositions()
	}
	circ := n.nw.Circ()
	count := n.N()
	for i, agent := range res.PerAgent {
		if agent.N != count {
			return fmt.Errorf("%w: agent %d discovered n=%d, want %d", ErrVerification, i, agent.N, count)
		}
		if len(agent.Positions) != count {
			return fmt.Errorf("%w: agent %d reported %d positions", ErrVerification, i, len(agent.Positions))
		}
		cwOK, ccwOK := true, true
		for d := 0; d < count; d++ {
			cw := 2 * (((pos[(i+d)%count]-pos[i])%circ + circ) % circ)
			ccw := 2 * (((pos[i]-pos[((i-d)%count+count)%count])%circ + circ) % circ)
			if agent.Positions[d] != cw {
				cwOK = false
			}
			if agent.Positions[d] != ccw {
				ccwOK = false
			}
		}
		if !cwOK && !ccwOK {
			return fmt.Errorf("%w: agent %d reported wrong positions", ErrVerification, i)
		}
	}
	return nil
}

// LocationDiscoveryLowerBound returns the Lemma 6 lower bound on rounds for
// location discovery in the given model.
func LocationDiscoveryLowerBound(model Model, n int) int {
	return discovery.LowerBoundRounds(model, n)
}
